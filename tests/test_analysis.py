"""Unit tests for the trace-characterization utilities."""

import pytest

from repro.traces.analysis import TraceProfile, compare_profiles, profile_trace
from repro.traces.trace import MemoryAccess


def _trace(blocks, gap=4, writes=()):
    return [
        MemoryAccess(pc=0x400, address=b << 6, is_write=(i in writes), gap=gap)
        for i, b in enumerate(blocks)
    ]


def test_empty_trace():
    profile = profile_trace([])
    assert profile.accesses == 0
    assert profile.footprint_blocks == 0
    assert profile.accesses_per_kilo_instruction == 0.0
    assert profile.estimated_hit_ratio(64) == 0.0


def test_footprint_counts_distinct_blocks():
    profile = profile_trace(_trace([1, 2, 3, 1, 2, 3]))
    assert profile.footprint_blocks == 3
    assert profile.footprint_bytes == 3 * 64


def test_cold_fraction():
    profile = profile_trace(_trace([1, 2, 3, 1]))
    assert profile.cold_fraction == pytest.approx(3 / 4)


def test_sequential_fraction_on_stream():
    profile = profile_trace(_trace(list(range(100))))
    assert profile.sequential_fraction == pytest.approx(99 / 100)


def test_sequential_fraction_on_random():
    profile = profile_trace(_trace([5, 90, 17, 4, 62]))
    assert profile.sequential_fraction == 0.0


def test_write_fraction():
    profile = profile_trace(_trace([1, 2, 3, 4], writes={0, 1}))
    assert profile.write_fraction == 0.5


def test_memory_intensity():
    profile = profile_trace(_trace([1, 2, 3, 4], gap=9))
    # 4 accesses over 40 instructions -> 100 per kilo-instruction
    assert profile.accesses_per_kilo_instruction == pytest.approx(100.0)


def test_reuse_distance_immediate_reuse():
    profile = profile_trace(_trace([7, 7, 7]))
    # distance 0 -> clamped to bucket for distance 1 (log2 bucket 0)
    assert sum(profile.reuse_distance_histogram.values()) == 2
    assert set(profile.reuse_distance_histogram) == {0}


def test_reuse_distance_stack_semantics():
    """A, B, C, A: A's reuse distance is 2 distinct blocks."""
    profile = profile_trace(_trace([1, 2, 3, 1]))
    (bucket, count), = profile.reuse_distance_histogram.items()
    assert count == 1
    assert bucket == 1  # log2(2)


def test_reuse_distance_ignores_duplicates_between():
    """A, B, B, B, A: only one distinct block between A's uses."""
    profile = profile_trace(_trace([1, 2, 2, 2, 1]))
    assert profile.reuse_distance_histogram.get(0, 0) >= 1


def test_estimated_hit_ratio_loop():
    # loop of 8 blocks, repeated: all reuses at distance 7
    blocks = list(range(8)) * 10
    profile = profile_trace(_trace(blocks))
    assert profile.estimated_hit_ratio(64) > 0.85  # everything but cold misses
    assert profile.estimated_hit_ratio(4) == 0.0  # loop exceeds capacity


def test_estimated_hit_ratio_monotone_in_capacity():
    blocks = [i % 37 for i in range(500)]
    profile = profile_trace(_trace(blocks))
    ratios = [profile.estimated_hit_ratio(c) for c in (2, 8, 32, 128, 512)]
    assert ratios == sorted(ratios)


def test_cdf_is_monotone():
    blocks = [i % 50 for i in range(1000)] + list(range(1000, 1200))
    profile = profile_trace(_trace(blocks))
    cdf = profile.reuse_distance_cdf()
    fractions = [f for _, f in cdf]
    assert fractions == sorted(fractions)
    assert fractions[-1] == pytest.approx(1.0)


def test_max_records_cap():
    profile = profile_trace(_trace(list(range(100))), max_records=10)
    assert profile.accesses == 10


def test_compaction_preserves_distances():
    """Long trace with heavy tombstoning still yields exact distances."""
    blocks = []
    for i in range(300):
        blocks += [i, 0]  # block 0 re-accessed with 1 distinct between
    profile = profile_trace(_trace(blocks))
    # block 0's reuse distance is always 1 -> bucket 0
    assert profile.reuse_distance_histogram.get(0, 0) >= 290


def test_compare_profiles_ranking():
    cacheable = profile_trace(_trace([i % 8 for i in range(200)]))
    streaming = profile_trace(_trace(list(range(200))))
    rows = compare_profiles({"loop": cacheable, "stream": streaming}, cache_blocks=64)
    assert rows[0][0] == "loop"
    assert rows[0][1] > rows[1][1]


def test_profile_works_on_spec_trace():
    from repro.traces.spec import build_spec_trace

    trace = build_spec_trace("hmmer06", 2000, seed=1, scale=1 / 64)
    profile = profile_trace(trace)
    assert profile.accesses == 2000
    assert profile.footprint_blocks > 0
    assert profile.distinct_pcs >= 2
