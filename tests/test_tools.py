"""Tests for the EXPERIMENTS.md fill tool."""

import importlib.util
import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).parent.parent / "tools"


@pytest.fixture()
def fill(tmp_path, monkeypatch):
    spec = importlib.util.spec_from_file_location(
        "fill_experiments", TOOLS / "fill_experiments.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    results = tmp_path / "results"
    results.mkdir()
    template = tmp_path / "template.md"
    target = tmp_path / "EXPERIMENTS.md"
    monkeypatch.setattr(module, "RESULTS", results)
    monkeypatch.setattr(module, "TEMPLATE", template)
    monkeypatch.setattr(module, "TARGET", target)
    return module, results, template, target


def test_fills_available_placeholders(fill):
    module, results, template, target = fill
    template.write_text("before\n{{FIG6}}\nafter\n")
    (results / "fig6.txt").write_text("TABLE CONTENT\n")
    module.main()
    text = target.read_text()
    assert "TABLE CONTENT" in text
    assert "{{FIG6}}" not in text


def test_missing_placeholder_left_alone(fill):
    module, results, template, target = fill
    template.write_text("{{FIG99}}\n")
    module.main()
    assert "{{FIG99}}" in target.read_text()


def test_finalize_replaces_missing_with_note(fill, monkeypatch):
    module, results, template, target = fill
    template.write_text("{{FIG99}}\n")
    monkeypatch.setattr(sys, "argv", ["fill_experiments.py", "--finalize"])
    module.main()
    text = target.read_text()
    assert "{{FIG99}}" not in text
    assert "chrome-repro run fig99" in text


def test_idempotent_from_template(fill):
    module, results, template, target = fill
    template.write_text("{{FIG6}}\n")
    module.main()
    (results / "fig6.txt").write_text("NOW PRESENT\n")
    module.main()  # refill from template, not from the previous output
    assert "NOW PRESENT" in target.read_text()
