"""End-to-end behavioural tests: do the policies exhibit the paper's
qualitative properties on workloads engineered to expose them?"""

import pytest

from repro.core.chrome import ChromePolicy
from repro.core.config import ChromeConfig
from repro.experiments.metrics import weighted_speedup
from repro.sim.multicore import MultiCoreSystem, SystemConfig
from repro.sim.replacement import make_policy
from repro.traces.mixes import homogeneous_mix
from repro.traces.synthetic import hot_plus_scan, make_trace, working_set_loop
from repro.traces.trace import Trace

SCALE = 1 / 64
# Online RL needs training time: measure after a long warmup (the paper
# warms 50M instructions; these are the scaled equivalents).
N = 18_000
WARM = 8_000


def _run(policy_name, traces, cores=2, prefetch="nl_stride", warm=WARM):
    system = MultiCoreSystem(
        SystemConfig(num_cores=cores, scale=SCALE),
        llc_policy=make_policy(policy_name),
        prefetch_config=prefetch,
    )
    return system.run(traces, warmup_accesses=warm)


def _pollution_mix(cores=2):
    """Hot working set + one-pass scan pollution, per core.

    The hot set (600 blocks) exceeds the scaled L2 (320 blocks) but fits
    the scaled LLC, so LLC retention decisions genuinely matter."""

    def build(core):
        base = (core + 1) << 40
        return make_trace(
            f"pollution-{core}",
            lambda: hot_plus_scan(0, base, hot_blocks=600, hot_fraction=0.6, seed=core),
            N,
        )

    return [build(c) for c in range(cores)]


def test_full_run_all_paper_schemes_complete():
    traces = homogeneous_mix("mcf06", 2, 1500, scale=SCALE)
    for name in ("lru", "hawkeye", "glider", "mockingjay", "care", "chrome"):
        result = _run(name, traces, warm=300)
        assert all(c.ipc > 0 for c in result.cores), name
        assert result.llc_stats.demand_accesses > 0, name


def test_chrome_beats_lru_on_pollution_workload():
    """The motivating scenario of Sec. III-A: single-use scan data
    pollutes a hot set under LRU; CHROME learns to bypass it."""
    base = _run("lru", _pollution_mix())
    chrome = _run("chrome", _pollution_mix())
    ws = weighted_speedup(chrome.ipcs, base.ipcs)
    assert ws > 1.0
    assert chrome.llc_mgmt.bypasses > 0


def test_chrome_bypass_efficiency_positive_on_scan():
    chrome = _run("chrome", _pollution_mix())
    assert chrome.llc_mgmt.bypass_coverage > 0.05
    assert chrome.llc_mgmt.bypass_efficiency > 0.5


def test_chrome_demand_miss_ratio_not_worse_than_lru_on_pollution():
    base = _run("lru", _pollution_mix())
    chrome = _run("chrome", _pollution_mix())
    assert (
        chrome.llc_stats.demand_miss_ratio
        <= base.llc_stats.demand_miss_ratio + 0.02
    )


def test_thrashing_loop_scan_resistant_policies_win():
    """A loop slightly bigger than the LLC is LRU's worst case."""
    cfg = SystemConfig(num_cores=1, scale=SCALE)
    llc_blocks = cfg.llc_effective_size // 64

    def traces():
        return [
            make_trace(
                "thrash",
                lambda: working_set_loop(0, 1 << 40, ws_blocks=int(llc_blocks * 1.3)),
                N,
            )
        ]

    lru = _run("lru", traces(), cores=1)
    hawkeye = _run("hawkeye", traces(), cores=1)
    assert (
        hawkeye.llc_stats.demand_miss_ratio
        <= lru.llc_stats.demand_miss_ratio + 0.02
    )


def test_prefetching_changes_llc_traffic():
    traces = homogeneous_mix("libquantum06", 2, 1500, scale=SCALE)
    with_pf = _run("lru", traces, prefetch="nl_stride", warm=300)
    traces = homogeneous_mix("libquantum06", 2, 1500, scale=SCALE)
    without = _run("lru", traces, prefetch="none", warm=300)
    assert with_pf.llc_stats.prefetch_hits + with_pf.llc_stats.prefetch_misses > 0
    assert without.llc_stats.prefetch_hits + without.llc_stats.prefetch_misses == 0


def test_prefetch_accuracy_high_on_streaming():
    traces = homogeneous_mix("libquantum06", 1, 2000, scale=SCALE)
    result = _run("lru", traces, cores=1, warm=300)
    # A 6-wide core streaming flat-out is DRAM-bound: the queue sheds a
    # large share of prefetches, so accuracy is bounded well below 1.
    assert result.prefetcher_accuracy > 0.15


def test_chrome_telemetry_learning_happened():
    result = _run("chrome", _pollution_mix())
    telemetry = result.extra["policy_telemetry"]
    assert telemetry["q_updates"] > 10
    assert telemetry["sampled_accesses"] > 50
    assert 0 < telemetry["upksa"] <= 1000


def test_nchrome_differs_from_chrome_under_obstruction():
    """With concurrency feedback active, CHROME and N-CHROME make
    different decisions (reward magnitudes differ when obstructed)."""
    chrome_res = _run("chrome", _pollution_mix())
    nchrome_res = _run("n-chrome", _pollution_mix())
    t1 = chrome_res.extra["policy_telemetry"]
    t2 = nchrome_res.extra["policy_telemetry"]
    assert t1["decisions"] > 0 and t2["decisions"] > 0


def test_camat_monitor_sees_epochs_in_long_run():
    traces = homogeneous_mix("mcf06", 2, 3000, scale=SCALE)
    system = MultiCoreSystem(
        SystemConfig(num_cores=2, scale=SCALE, epoch_cycles=5000.0),
        llc_policy=ChromePolicy(),
    )
    result = system.run(traces)
    assert any(
        f > 0 for f in result.camat_summary["per_core_obstructed_epoch_fraction"]
    ) or all(s.epochs > 0 for s in system.camat.cores)


def test_deterministic_reruns():
    """Same configuration + same traces => identical results."""
    a = _run("chrome", _pollution_mix())
    b = _run("chrome", _pollution_mix())
    assert a.ipcs == b.ipcs
    assert a.llc_stats.demand_misses == b.llc_stats.demand_misses
