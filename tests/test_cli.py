"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list_prints_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for expected in ("fig1", "fig16", "tab3", "tab7"):
        assert expected in out


def test_list_prints_every_registered_id(capsys):
    from repro.experiments import available_experiments

    assert main(["list"]) == 0
    printed = capsys.readouterr().out.splitlines()
    for experiment_id in available_experiments():
        assert experiment_id in printed, experiment_id


def test_list_includes_serve_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.splitlines()
    for expected in ("serve_zipf", "serve_multitenant", "serve_phases"):
        assert expected in out


def test_run_unknown_experiment_errors(capsys):
    assert main(["run", "fig99"]) == 2
    err = capsys.readouterr().err
    assert "unknown" in err
    # the error is actionable: it lists what *is* runnable
    assert "available" in err and "fig6" in err and "serve_zipf" in err


def test_run_analytic_table(capsys):
    assert main(["run", "tab3"]) == 0
    out = capsys.readouterr().out
    assert "92.7" in out  # Table III total


def test_run_tab4(capsys):
    assert main(["run", "tab4"]) == 0
    out = capsys.readouterr().out
    assert "chrome" in out and "mockingjay" in out


def test_run_simulated_experiment_tiny(capsys):
    code = main(
        [
            "run",
            "fig15",
            "--scale",
            str(1 / 64),
            "--accesses",
            "300",
            "--warmup",
            "50",
            "--workloads",
            "1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "pc+pn" in out


def test_cli_flags_override_env(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_WORKLOADS", "7")
    from repro.cli import _build_parser, _scale_from_args

    args = _build_parser().parse_args(["run", "fig6", "--workloads", "2"])
    scale = _scale_from_args(args)
    assert scale.workload_limit == 2


# --- cluster/ops flag plumbing (flags must land in the frozen job specs) ------


def _parse(argv):
    from repro.cli import _build_parser

    return _build_parser().parse_args(argv)


def test_cluster_flags_reach_cluster_job():
    from repro.cli import _cluster_job_from_args

    job = _cluster_job_from_args(
        _parse(
            [
                "cluster", "--shards", "5", "--replication", "3",
                "--policy", "lru", "--workload", "phases",
                "--requests", "1234", "--warmup", "56",
                "--capacity-mb", "8", "--clients", "3", "--seed", "9",
                "--federate-every", "400", "--hotkey-window", "250",
            ]
        )
    )
    assert (job.num_shards, job.replication) == (5, 3)
    assert (job.policy, job.workload) == ("lru", "phases")
    assert (job.num_requests, job.warmup_requests) == (1234, 56)
    assert job.capacity_bytes == 8 << 20
    assert (job.num_clients, job.seed) == (3, 9)
    assert (job.federate_every, job.hotkey_window) == (400, 250)
    assert job.kill_shard == -1 and job.kill_fault_params == ()


def test_cluster_kill_shard_validation():
    from repro.cli import _cluster_job_from_args

    with pytest.raises(ValueError, match="out of range"):
        _cluster_job_from_args(_parse(["cluster", "--kill-shard", "7"]))
    job = _cluster_job_from_args(
        _parse(["cluster", "--shards", "4", "--kill-shard", "2"])
    )
    assert job.kill_shard == 2 and job.kill_fault_params
    with pytest.raises(ValueError, match="shards"):
        _cluster_job_from_args(_parse(["cluster", "--shards", "0"]))


def test_ops_flags_reach_ops_job():
    from repro.cli import _ops_job_from_args
    from repro.ops import OpsConfig

    job = _ops_job_from_args(
        _parse(
            [
                "ops", "--policy", "chrome", "--workload", "phases",
                "--requests", "3200", "--warmup", "200", "--capacity-mb", "2",
                "--clients", "4", "--seed", "17", "--shards", "3",
                "--window", "200", "--challenger", "lru",
                "--promote-after", "2", "--min-byte-hit", "0.05",
                "--max-p99", "9.5", "--snapshot-every", "2",
                "--degrade-at", "6",
            ]
        )
    )
    assert (job.workload, job.policy) == ("phases", "chrome")
    assert (job.num_requests, job.warmup_requests) == (3200, 200)
    assert job.capacity_bytes == 2 << 20
    assert (job.num_clients, job.seed, job.num_shards) == (4, 17, 3)
    ops = OpsConfig.from_params(job.ops_params)
    assert ops.window == 200
    assert ops.challenger_policy == "lru" and ops.promote_after == 2
    assert ops.min_byte_hit_ewma == 0.05 and ops.max_p99_ms == 9.5
    assert ops.snapshot_every == 2 and ops.degrade_at_window == 6


def test_ops_window_defaults_to_sixteenth_of_run():
    from repro.cli import _ops_job_from_args
    from repro.ops import OpsConfig

    job = _ops_job_from_args(
        _parse(["ops", "--requests", "3200", "--warmup", "0"])
    )
    assert OpsConfig.from_params(job.ops_params).window == 200
    with pytest.raises(ValueError, match="shards"):
        _ops_job_from_args(_parse(["ops", "--shards", "-1"]))


@pytest.mark.parametrize("command", ["cluster", "ops"])
def test_obs_and_backend_flags_are_uniform(command, monkeypatch, tmp_path):
    from repro.cli import _obs_config_from_args

    args = _parse([command])
    assert args.backend is None
    assert _obs_config_from_args(args) is None
    args = _parse([command, "--obs"])
    assert _obs_config_from_args(args).out_dir == "obs-artifacts"
    target = str(tmp_path / "artifacts")
    args = _parse([command, "--obs-dir", target, "--backend", "numpy"])
    assert _obs_config_from_args(args).out_dir == target  # implies --obs
    assert args.backend == "numpy"


def test_ops_cli_end_to_end_guarded_run(capsys):
    assert main(
        [
            "ops", "--requests", "2000", "--warmup", "200",
            "--capacity-mb", "2", "--clients", "2", "--seed", "17",
            "--window", "200", "--min-byte-hit", "0.05",
            "--snapshot-every", "2", "--degrade-at", "3",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "champion:" in out
    assert "event: degrade @ window 3" in out
    assert "rollbacks" in out
