"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list_prints_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for expected in ("fig1", "fig16", "tab3", "tab7"):
        assert expected in out


def test_list_prints_every_registered_id(capsys):
    from repro.experiments import available_experiments

    assert main(["list"]) == 0
    printed = capsys.readouterr().out.splitlines()
    for experiment_id in available_experiments():
        assert experiment_id in printed, experiment_id


def test_list_includes_serve_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.splitlines()
    for expected in ("serve_zipf", "serve_multitenant", "serve_phases"):
        assert expected in out


def test_run_unknown_experiment_errors(capsys):
    assert main(["run", "fig99"]) == 2
    err = capsys.readouterr().err
    assert "unknown" in err
    # the error is actionable: it lists what *is* runnable
    assert "available" in err and "fig6" in err and "serve_zipf" in err


def test_run_analytic_table(capsys):
    assert main(["run", "tab3"]) == 0
    out = capsys.readouterr().out
    assert "92.7" in out  # Table III total


def test_run_tab4(capsys):
    assert main(["run", "tab4"]) == 0
    out = capsys.readouterr().out
    assert "chrome" in out and "mockingjay" in out


def test_run_simulated_experiment_tiny(capsys):
    code = main(
        [
            "run",
            "fig15",
            "--scale",
            str(1 / 64),
            "--accesses",
            "300",
            "--warmup",
            "50",
            "--workloads",
            "1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "pc+pn" in out


def test_cli_flags_override_env(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_WORKLOADS", "7")
    from repro.cli import _build_parser, _scale_from_args

    args = _build_parser().parse_args(["run", "fig6", "--workloads", "2"])
    scale = _scale_from_args(args)
    assert scale.workload_limit == 2
