"""Generic property harness for every registered workload generator.

Every test in this module is parametrized over the ``WORKLOADS``
registry, so a new generator gets its correctness checks *for free*
the moment it registers — no per-generator test code:

* **determinism** — identical (name, count, seed) produce byte-
  identical request streams, across two fresh calls;
* **seed sensitivity** — different seeds produce different streams
  (the generator actually consumes its seed);
* **count exactness** — the stream has exactly the requested length,
  for awkward counts too (bursts and floods must truncate cleanly);
* **size validity** — every size is positive, bounded by
  ``MAX_OBJECT_BYTES``, and equals ``object_size(key)`` (sizes are a
  pure function of the key — the "same URL, same body" contract every
  store and policy relies on);
* **declared invariants** — each :class:`WorkloadSpec` states
  machine-checkable distribution facts (hot-set skew, one-shot mass,
  burst periodicity, tenant span, hot-set drift); the harness verifies
  exactly the facts a spec declares.

Plus focused tests for :func:`build_workload`'s error paths: unknown
names fail with a did-you-mean suggestion, unknown knobs fail listing
the valid ones.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.serve.workloads import (
    MAX_OBJECT_BYTES,
    WORKLOAD_SPECS,
    WORKLOADS,
    build_workload,
    key_namespace,
    object_size,
)

#: every harness run generates this many requests — large enough that
#: storms/floods/phases all fire, small enough to keep tier-1 fast
_N = 6000
_SEED = 5

_ALL = sorted(WORKLOADS)


@pytest.fixture(scope="module")
def streams():
    """One shared stream per generator (the harness is read-only)."""
    return {name: build_workload(name, _N, seed=_SEED) for name in _ALL}


@pytest.mark.parametrize("name", _ALL)
def test_identical_seeds_byte_identical(name, streams):
    again = build_workload(name, _N, seed=_SEED)
    assert again == streams[name]


@pytest.mark.parametrize("name", _ALL)
def test_different_seeds_differ(name, streams):
    other = build_workload(name, _N, seed=_SEED + 1)
    assert other != streams[name]


@pytest.mark.parametrize("name", _ALL)
@pytest.mark.parametrize("count", [1, 7, 997, _N])
def test_request_count_exact(name, count):
    assert len(build_workload(name, count, seed=_SEED)) == count


@pytest.mark.parametrize("name", _ALL)
def test_sizes_valid_and_key_determined(name, streams):
    for r in streams[name]:
        assert 0 < r.size <= MAX_OBJECT_BYTES, (r.key, r.size)
        assert r.size == object_size(r.key)


@pytest.mark.parametrize("name", _ALL)
def test_keys_stay_inside_tenant_namespaces(name, streams):
    """Tenant bits sit above every generator namespace: stripping them
    must always leave a known namespace id."""
    namespaces = {key_namespace(r.key) for r in streams[name]}
    assert namespaces <= set(range(9)), namespaces


# --- declared distribution invariants ----------------------------------------


def _invariant_cases(kind):
    return [
        pytest.param(name, spec.invariants[kind], id=name)
        for name, spec in sorted(WORKLOAD_SPECS.items())
        if kind in spec.invariants
    ]


def test_every_spec_declares_at_least_one_invariant():
    """A generator with no declared facts gets no free checking — keep
    the registry honest."""
    for name, spec in WORKLOAD_SPECS.items():
        assert spec.invariants, f"{name} declares no invariants"


@pytest.mark.parametrize("name,minimum", _invariant_cases("hot_skew_min"))
def test_hot_skew(name, minimum, streams):
    """The top 10% of distinct keys carry >= the declared request mass."""
    counts = Counter(r.key for r in streams[name])
    top = max(1, len(counts) // 10)
    hot_mass = sum(c for _, c in counts.most_common(top))
    skew = hot_mass / sum(counts.values())
    assert skew >= minimum, f"{name}: hot skew {skew:.3f} < {minimum}"


@pytest.mark.parametrize("name,minimum", _invariant_cases("one_shot_min"))
def test_one_shot_mass(name, minimum, streams):
    """At least the declared fraction of distinct keys is touched once."""
    counts = Counter(r.key for r in streams[name])
    one_shot = sum(1 for c in counts.values() if c == 1) / len(counts)
    assert one_shot >= minimum, f"{name}: one-shot {one_shot:.3f} < {minimum}"


@pytest.mark.parametrize("name,namespace", _invariant_cases("periodic_namespace"))
def test_periodic_bursts(name, namespace, streams):
    """Requests in the declared namespace arrive as >= 3 contiguous
    runs with regular spacing (periodic storms / scans / floods)."""
    stream = streams[name]
    runs = []  # (start_index, length) of each contiguous namespace run
    inside = False
    for i, r in enumerate(stream):
        if key_namespace(r.key) == namespace:
            if not inside:
                runs.append([i, 0])
                inside = True
            runs[-1][1] += 1
        else:
            inside = False
    assert len(runs) >= 3, f"{name}: only {len(runs)} burst(s) in ns {namespace}"
    starts = [start for start, _ in runs]
    gaps = [b - a for a, b in zip(starts, starts[1:])]
    mean = sum(gaps) / len(gaps)
    for gap in gaps:
        assert abs(gap - mean) <= 0.5 * mean, (
            f"{name}: irregular burst spacing {gaps}"
        )


@pytest.mark.parametrize("name,minimum", _invariant_cases("tenants_min"))
def test_tenant_span(name, minimum, streams):
    tenants = {r.tenant for r in streams[name]}
    assert len(tenants) >= minimum


@pytest.mark.parametrize("name,maximum", _invariant_cases("drift_max_overlap"))
def test_hot_set_drifts(name, maximum, streams):
    """Jaccard overlap of the first vs. last quarter's top-50 keys."""
    stream = streams[name]
    quarter = len(stream) // 4
    first = {k for k, _ in Counter(r.key for r in stream[:quarter]).most_common(50)}
    last = {k for k, _ in Counter(r.key for r in stream[-quarter:]).most_common(50)}
    jaccard = len(first & last) / len(first | last)
    assert jaccard <= maximum, f"{name}: overlap {jaccard:.3f} > {maximum}"


# --- build_workload error paths ----------------------------------------------


def test_unknown_workload_lists_registry_and_suggests():
    with pytest.raises(KeyError) as excinfo:
        build_workload("proxy_bursts", 10)
    message = str(excinfo.value)
    assert "proxy_bursts" in message
    assert "did you mean 'proxy_burst'?" in message
    for name in WORKLOADS:
        assert name in message


def test_unknown_workload_without_near_miss_still_lists():
    with pytest.raises(KeyError) as excinfo:
        build_workload("no-such-thing-at-all", 10)
    message = str(excinfo.value)
    assert "available" in message
    assert "did you mean" not in message


def test_unknown_knob_names_valid_knobs():
    with pytest.raises(TypeError) as excinfo:
        build_workload("retrieval", 10, cluster_sise=4)
    message = str(excinfo.value)
    assert "cluster_sise" in message
    assert "cluster_size" in message  # listed among the valid knobs


def test_valid_knobs_pass_through():
    stream = build_workload("proxy_burst", 50, seed=1, storm_every=10,
                            storm_length=5)
    assert len(stream) == 50
