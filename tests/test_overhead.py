"""Unit tests for the storage-overhead models (Tables III, IV, VII)."""

import pytest

from dataclasses import replace

from repro.core.config import ChromeConfig
from repro.core.overhead import (
    chrome_overhead,
    eq_overhead_kb,
    overhead_comparison,
    overhead_fraction_of_llc,
)


def test_table_iii_qtable_32kb():
    assert chrome_overhead().qtable_kb == 32.0


def test_table_iii_eq_12_7kb():
    assert round(chrome_overhead().eq_kb, 1) == 12.7


def test_table_iii_metadata_48kb():
    assert chrome_overhead().metadata_kb == 48.0


def test_table_iii_total_92_7kb():
    assert round(chrome_overhead().total_kb, 1) == 92.7


def test_fraction_of_llc_is_0_75_percent():
    frac = overhead_fraction_of_llc(chrome_overhead())
    assert round(100 * frac, 2) == 0.75


def test_overhead_scales_with_fifo_size():
    small = chrome_overhead(replace(ChromeConfig(), eq_fifo_size=12))
    large = chrome_overhead(replace(ChromeConfig(), eq_fifo_size=36))
    assert small.eq_bits < large.eq_bits
    assert small.qtable_bits == large.qtable_bits


def test_table_vii_overhead_row():
    # Table VII reports 5.4 / 7.3 / 9.1 / 10.9 / 12.7 / 14.5 / 16.3 KB.
    expected = {12: 5.4, 16: 7.3, 20: 9.1, 24: 10.9, 28: 12.7, 32: 14.5, 36: 16.3}
    for fifo, kb in expected.items():
        # paper rounds half-up (7.25 -> 7.3); allow that half-quantum
        assert abs(eq_overhead_kb(fifo) - kb) <= 0.051


def test_table_iv_rows_and_ordering():
    rows = {s.scheme: s for s in overhead_comparison()}
    assert rows["hawkeye"].overhead_kb == 146.0
    assert rows["glider"].overhead_kb == 254.0
    assert rows["mockingjay"].overhead_kb == 170.6
    assert rows["care"].overhead_kb == 130.5
    assert rows["chrome"].overhead_kb == 92.7
    # CHROME is smallest and the only holistic + concurrency-aware scheme.
    assert min(rows.values(), key=lambda s: s.overhead_kb).scheme == "chrome"
    assert rows["chrome"].holistic and rows["chrome"].concurrency_aware
    assert rows["mockingjay"].holistic and not rows["mockingjay"].concurrency_aware
    assert rows["care"].concurrency_aware and not rows["care"].holistic


def test_single_feature_halves_qtable():
    half = chrome_overhead(num_features=1)
    assert half.qtable_kb == 16.0
