"""Unit tests for the C-AMAT monitor and LLC-obstruction detection."""

from repro.sim.camat import CAMATMonitor, CoreCAMATState


def test_non_overlapping_intervals_sum():
    state = CoreCAMATState()
    state.record(0.0, 10.0)
    state.record(20.0, 10.0)
    assert state.total_active_cycles == 20.0
    assert state.total_accesses == 2
    assert state.total_camat == 10.0


def test_fully_overlapping_intervals_count_once():
    state = CoreCAMATState()
    state.record(0.0, 100.0)
    state.record(10.0, 20.0)  # entirely inside [0,100)
    assert state.total_active_cycles == 100.0
    # C-AMAT halves with perfect overlap: 100 cycles / 2 accesses.
    assert state.total_camat == 50.0


def test_partial_overlap_counts_union():
    state = CoreCAMATState()
    state.record(0.0, 10.0)
    state.record(5.0, 10.0)  # overlaps [5,10), extends to 15
    assert state.total_active_cycles == 15.0


def test_epoch_close_sets_obstruction_flags():
    mon = CAMATMonitor(num_cores=2, t_mem=100.0, epoch_cycles=1000.0)
    # Core 0: serialized long accesses -> camat 200 > 100 -> obstructed.
    mon.record_llc_access(0, 0.0, 200.0)
    mon.record_llc_access(0, 300.0, 200.0)
    # Core 1: short accesses -> camat 20 < 100.
    mon.record_llc_access(1, 0.0, 20.0)
    assert mon.maybe_close_epoch(1000.0)
    assert mon.is_obstructed(0)
    assert not mon.is_obstructed(1)


def test_epoch_does_not_close_early():
    mon = CAMATMonitor(num_cores=1, t_mem=10.0, epoch_cycles=1000.0)
    mon.record_llc_access(0, 0.0, 50.0)
    assert not mon.maybe_close_epoch(999.0)
    assert not mon.is_obstructed(0)


def test_overlapped_core_escapes_obstruction():
    """High MLP keeps C-AMAT below T_mem even with slow accesses —
    the concurrency insight of Sec. II-C."""
    mon = CAMATMonitor(num_cores=1, t_mem=100.0, epoch_cycles=1000.0)
    # Eight 200-cycle accesses all overlapping in [0, 200).
    for _ in range(8):
        mon.record_llc_access(0, 0.0, 200.0)
    mon.maybe_close_epoch(1000.0)
    # camat = 200 active cycles / 8 accesses = 25 < 100
    assert not mon.is_obstructed(0)


def test_epoch_listener_receives_flags():
    seen = []
    mon = CAMATMonitor(num_cores=2, t_mem=10.0, epoch_cycles=100.0)
    mon.add_epoch_listener(seen.append)
    mon.record_llc_access(0, 0.0, 50.0)
    mon.maybe_close_epoch(100.0)
    assert seen == [[True, False]]


def test_epoch_counters_reset_each_epoch():
    mon = CAMATMonitor(num_cores=1, t_mem=10.0, epoch_cycles=100.0)
    mon.record_llc_access(0, 0.0, 50.0)
    mon.maybe_close_epoch(100.0)
    assert mon.is_obstructed(0)
    # No accesses in second epoch -> camat 0 -> not obstructed.
    mon.maybe_close_epoch(200.0)
    assert not mon.is_obstructed(0)


def test_multiple_epochs_skipped_at_once():
    mon = CAMATMonitor(num_cores=1, t_mem=10.0, epoch_cycles=100.0)
    mon.maybe_close_epoch(1050.0)
    # The epoch boundary advances past `now`.
    assert not mon.maybe_close_epoch(1099.0)
    assert mon.maybe_close_epoch(1100.0)


def test_summary_shape():
    mon = CAMATMonitor(num_cores=2, t_mem=42.0, epoch_cycles=10.0)
    mon.record_llc_access(0, 0.0, 5.0)
    mon.maybe_close_epoch(10.0)
    summary = mon.summary()
    assert summary["t_mem"] == 42.0
    assert len(summary["per_core_camat"]) == 2
    assert summary["per_core_obstructed_epoch_fraction"][0] == 0.0


def test_idle_gap_closes_every_elapsed_epoch():
    """A core idle across several epochs must close each one separately:
    epoch counts, listener cadence and observer indices all advance once
    per elapsed epoch (the multi-epoch-gap off-by-one regression)."""
    mon = CAMATMonitor(num_cores=1, t_mem=10.0, epoch_cycles=100.0)
    listener_calls = []
    observer_calls = []
    mon.add_epoch_listener(lambda flags: listener_calls.append(list(flags)))
    mon.add_epoch_observer(
        lambda index, end, camats, flags: observer_calls.append(
            (index, end, list(camats))
        )
    )
    mon.record_llc_access(0, 0.0, 40.0)
    # `now` jumps past epochs [0,100), [100,200), [200,300): three closes.
    assert mon.maybe_close_epoch(310.0)
    assert mon.epochs_closed == 3
    assert mon.cores[0].epochs == 3
    assert len(listener_calls) == 3
    # The first close takes the accumulated window; the skipped epochs
    # close empty (C-AMAT 0.0, unobstructed).
    assert observer_calls == [
        (0, 100.0, [40.0]),
        (1, 200.0, [0.0]),
        (2, 300.0, [0.0]),
    ]
    assert not mon.is_obstructed(0)
    # The next boundary is exactly one epoch further on.
    assert not mon.maybe_close_epoch(399.0)
    assert mon.maybe_close_epoch(400.0)
    assert mon.epochs_closed == 4


def test_obstructed_epoch_fraction_counts_idle_epochs():
    """Obstructed-epoch fractions are per elapsed epoch, so a long idle
    gap dilutes the fraction instead of being collapsed away."""
    mon = CAMATMonitor(num_cores=1, t_mem=10.0, epoch_cycles=100.0)
    mon.record_llc_access(0, 0.0, 50.0)  # camat 50 > 10 -> obstructed
    mon.maybe_close_epoch(400.0)  # epochs 0..3 close; only epoch 0 obstructed
    summary = mon.summary()
    assert mon.cores[0].epochs == 4
    assert mon.cores[0].obstructed_epochs == 1
    assert summary["per_core_obstructed_epoch_fraction"] == [0.25]
