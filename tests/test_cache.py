"""Unit tests for the set-associative cache and its policy hooks."""

import pytest

from repro.sim.access import DEMAND, PREFETCH, WRITEBACK, AccessInfo
from repro.sim.cache import Cache
from repro.sim.replacement.base import ReplacementPolicy
from repro.sim.replacement.lru import LRUPolicy


def _info(block, pc=0x400, core=0, type_=DEMAND, write=False):
    return AccessInfo(
        pc=pc,
        address=block << 6,
        block_addr=block,
        core=core,
        type=type_,
        is_write=write,
    )


def small_cache(ways=2, sets=4, **kwargs):
    return Cache(
        name="t",
        size_bytes=64 * ways * sets,
        ways=ways,
        latency=1.0,
        **kwargs,
    )


def test_rejects_non_power_of_two_sets():
    with pytest.raises(ValueError):
        Cache(name="bad", size_bytes=64 * 3, ways=1, latency=1.0)


def test_miss_then_hit():
    cache = small_cache()
    info = _info(5)
    hit, _ = cache.access(info)
    assert not hit
    cache.fill(_info(5))
    hit, _ = cache.access(_info(5))
    assert hit
    assert cache.stats.demand_hits == 1
    assert cache.stats.demand_misses == 1


def test_probe_has_no_side_effects():
    cache = small_cache()
    cache.fill(_info(5))
    before = cache.stats.demand_hits
    assert cache.probe(5)
    assert not cache.probe(6)
    assert cache.stats.demand_hits == before


def test_fill_evicts_lru_victim():
    cache = small_cache(ways=2, sets=1)
    cache.fill(_info(0))
    cache.fill(_info(1))
    cache.access(_info(0))  # 0 becomes MRU
    victim = cache.fill(_info(2))
    assert victim is not None
    evicted_addr, dirty = victim
    assert evicted_addr == 1
    assert not dirty
    assert cache.probe(0) and cache.probe(2) and not cache.probe(1)


def test_dirty_eviction_reports_writeback():
    cache = small_cache(ways=1, sets=1)
    cache.fill(_info(0, write=True))
    victim = cache.fill(_info(1))
    assert victim == (0, True)


def test_write_hit_sets_dirty():
    cache = small_cache(ways=1, sets=1)
    cache.fill(_info(0))
    cache.access(_info(0, write=True))
    victim = cache.fill(_info(1))
    assert victim == (0, True)


def test_duplicate_fill_is_noop_but_merges_dirtiness():
    cache = small_cache(ways=2, sets=1)
    cache.fill(_info(0))
    assert cache.fill(_info(0), dirty=True) is None
    victim1 = cache.fill(_info(1))
    victim2 = cache.fill(_info(2))
    dirty_evictions = [v for v in (victim1, victim2) if v and v[1]]
    assert len(dirty_evictions) == 1


def test_same_set_different_tag_conflict():
    cache = small_cache(ways=1, sets=4)
    cache.fill(_info(0))
    cache.fill(_info(4))  # same set (4 sets), different tag
    assert not cache.probe(0)
    assert cache.probe(4)


def test_prefetch_bit_cleared_on_first_demand_hit():
    cache = small_cache(track_mgmt_stats=True)
    cache.fill(_info(7, type_=PREFETCH))
    hit, first = cache.access(_info(7, type_=DEMAND))
    assert hit and first
    hit, first = cache.access(_info(7, type_=DEMAND))
    assert hit and not first
    assert cache.mgmt.prefetch_fill_hits == 1


def test_prefetch_access_does_not_clear_prefetch_bit():
    cache = small_cache(track_mgmt_stats=True)
    cache.fill(_info(7, type_=PREFETCH))
    hit, first = cache.access(_info(7, type_=PREFETCH))
    assert hit and not first
    assert cache.mgmt.prefetch_fill_hits == 0


def test_mgmt_stats_track_fills_and_bypasses():
    class AlwaysBypass(ReplacementPolicy):
        name = "always-bypass"

        def should_bypass(self, info):
            return True

        def find_victim(self, info, blocks):
            return 0

    cache = small_cache(policy=AlwaysBypass(), track_mgmt_stats=True)
    info = _info(3)
    cache.access(info)
    assert cache.decide_bypass(info) is True
    assert cache.mgmt.bypasses == 1
    # Writebacks never bypass.
    wb = _info(9, type_=WRITEBACK, write=True)
    assert cache.decide_bypass(wb) is False


def test_eviction_unused_tracking():
    cache = small_cache(ways=1, sets=1, track_mgmt_stats=True)
    cache.fill(_info(0))
    cache.fill(_info(1))  # evicts 0, never reused
    assert cache.mgmt.evicted_unused == 1
    cache.access(_info(1))  # reuse 1
    cache.fill(_info(2))  # evicts 1, which was reused
    assert cache.mgmt.evicted_used == 1


def test_unused_requested_again_resolution():
    cache = small_cache(ways=1, sets=1, track_mgmt_stats=True)
    cache.fill(_info(0))
    cache.fill(_info(1))  # evict 0 unused
    cache.access(_info(0))  # 0 requested again
    assert cache.mgmt.unused_requested_again == 1


def test_invalidate():
    cache = small_cache()
    cache.fill(_info(5))
    assert cache.invalidate(5)
    assert not cache.probe(5)
    assert not cache.invalidate(5)


def test_occupancy_counts_valid_blocks():
    cache = small_cache(ways=2, sets=4)
    assert cache.occupancy() == 0
    for i in range(5):
        cache.fill(_info(i))
    assert cache.occupancy() == 5


def test_policy_victim_out_of_range_raises():
    class Broken(ReplacementPolicy):
        name = "broken"

        def find_victim(self, info, blocks):
            return 99

    cache = small_cache(ways=1, sets=1, policy=Broken())
    cache.fill(_info(0))
    with pytest.raises(RuntimeError):
        cache.fill(_info(1))


def test_lru_policy_storage_overhead_positive():
    policy = LRUPolicy()
    cache = small_cache(ways=4, sets=8, policy=policy)
    assert policy.storage_overhead_bits() > 0
