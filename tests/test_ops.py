"""Live-operations subsystem: shadow, hot-swap, guardrail, rollback.

The contracts under test, in order of importance:

* **zero impact** — attaching the ops controller (inert config, or with
  a shadow challenger running) leaves champion metrics byte-identical
  to a plain :func:`run_configured` run;
* **determinism** — the complete :class:`OpsResult` (windows, events,
  counters) is value-equal at ``num_clients`` 1 vs 64, including runs
  with injected degradation, trips and rollbacks;
* **guardrail semantics** — warmup arming, EWMA smoothing, raw-breach
  suspicion (poison protection), trip streaks, post-rollback cooldown;
* **snapshot ring** — bounded retention, consume-on-rollback walk-back,
  JSON persistence round trip;
* **recovery** — an injected bad deploy on a drifting workload actually
  trips the guardrail, rolls back, and the cache re-learns.
"""

from __future__ import annotations

import json
from dataclasses import replace
from functools import lru_cache

import pytest

from repro.obs.signals import WindowSignals
from repro.ops import (
    EVENT_DEGRADE,
    EVENT_PROMOTE,
    EVENT_ROLLBACK,
    EVENT_SNAPSHOT,
    EVENT_TRIP,
    Guardrail,
    OpsConfig,
    ShadowHarness,
    SnapshotRing,
    load_fleet_states,
    run_cluster_ops,
    run_ops,
    sabotaged_states,
)
from repro.ops.snapshots import save_fleet_states
from repro.serve.config import ServiceConfig
from repro.serve.service import run_configured
from repro.serve.workloads import build_workload

# The committed serve-golden spec (chrome_zipf_scan), reused so the
# zero-impact claim is pinned against the exact stream the golden runs.
_SPEC = dict(
    capacity_bytes=2 << 20,
    num_segments=64,
    policy="chrome",
    num_clients=5,
    warmup_requests=200,
    checkpoint_every=400,
    seed=17,
    workload_name="zipf_scan",
)


def _config(**over) -> ServiceConfig:
    params = dict(_SPEC)
    params.update(over)
    return ServiceConfig.from_params(**params)


def _zipf_requests(n=1200, seed=17):
    return build_workload("zipf_scan", n, seed=seed)


def _phase_requests(n=4000, seed=17):
    return build_workload("phases", n, seed=seed, num_phases=8)


# The validated recovery scenario: a drifting (phases) workload, bad
# deploy injected at window 6, byte-hit guardrail armed.
_GUARDED = OpsConfig(
    window=200,
    min_byte_hit_ewma=0.05,
    trip_after=2,
    warmup_windows=2,
    snapshot_every=2,
    degrade_at_window=6,
)


def _signals(byte_hit=0.5, requests=1000, p99_ms=1.0, errors=0, shed=0):
    return WindowSignals(
        requests=requests,
        hits=int(requests * byte_hit),
        bytes_requested=requests * 1000,
        bytes_hit=int(requests * 1000 * byte_hit),
        errors=errors,
        shed=shed,
        p99_ms=p99_ms,
    )


# --- zero impact ----------------------------------------------------------------


def test_inert_ops_config_is_byte_identical_to_plain_run():
    requests = _zipf_requests()
    plain = run_configured(requests, _config())
    managed = run_ops(requests, _config(), OpsConfig())
    assert managed.champion == plain
    assert managed.challenger is None
    assert managed.events == []
    assert (managed.snapshots, managed.trips, managed.rollbacks) == (0, 0, 0)


def test_shadow_challenger_has_zero_champion_impact():
    requests = _zipf_requests()
    plain = run_configured(requests, _config())
    shadowed = run_ops(
        requests,
        _config(),
        OpsConfig(window=200, challenger_policy="lru"),
    )
    assert shadowed.champion == plain  # structural isolation, pinned
    assert shadowed.challenger is not None
    assert shadowed.challenger.policy == "lru"
    # per-window delta rows exist and carry both sides
    assert len(shadowed.windows) == len(requests) // 200
    measured = [w for w in shadowed.windows if w["champion_requests"]]
    assert measured
    for row in measured:
        assert row["delta_byte_hit"] == pytest.approx(
            row["challenger_byte_hit"] - row["champion_byte_hit"]
        )


def test_shadow_requires_challenger_policy():
    with pytest.raises(ValueError, match="challenger_policy"):
        ShadowHarness(_config(), OpsConfig())


# --- determinism ----------------------------------------------------------------


@lru_cache(maxsize=None)
def _guarded_run(clients: int):
    """Memoized: several tests inspect the same pure-function run."""
    return run_ops(_phase_requests(), _config(num_clients=clients), _GUARDED)


@pytest.mark.parametrize("clients", [1, 64])
def test_guarded_degrade_run_is_client_count_invariant(clients):
    baseline = _guarded_run(5)
    assert baseline.degradations == 1
    assert baseline.trips >= 1 and baseline.rollbacks >= 1
    assert _guarded_run(clients) == baseline  # full OpsResult value equality


def test_shadowed_run_is_client_count_invariant():
    ops = OpsConfig(window=200, challenger_policy="lru")
    one = run_ops(_zipf_requests(), _config(num_clients=1), ops)
    many = run_ops(_zipf_requests(), _config(num_clients=64), ops)
    assert one == many


# --- guardrail unit semantics ---------------------------------------------------


def test_guardrail_skips_empty_windows():
    guard = Guardrail(_GUARDED)
    verdict = guard.observe(_signals(requests=0))
    assert not verdict.suspect and not verdict.tripped
    assert verdict.byte_hit_ewma is None


def test_guardrail_arms_only_after_warmup():
    # Armed from the warmup_windows-th *measured* window onward: with
    # warmup_windows=2 the second measured window is already judged
    # armed (the historic off-by-one armed one window later).
    guard = Guardrail(_GUARDED)  # warmup_windows=2, trip_after=2
    v1 = guard.observe(_signals(byte_hit=0.0))
    assert v1.suspect and not v1.armed and not v1.tripped
    v2 = guard.observe(_signals(byte_hit=0.0))
    assert v2.suspect and v2.armed
    assert v2.streak == 2 and v2.tripped  # armed exactly at the boundary


def test_guardrail_empty_windows_do_not_burn_warmup():
    guard = Guardrail(_GUARDED)  # warmup_windows=2
    for _ in range(5):
        guard.observe(_signals(requests=0))
    v1 = guard.observe(_signals(byte_hit=0.0))
    assert not v1.armed  # only measured windows count toward warmup
    assert guard.observe(_signals(byte_hit=0.0)).armed


def test_guardrail_alternating_breach_degradation_trips():
    # Degradation that alternates a hard-breach window (p99) with a
    # window whose only symptom is a raw byte-hit breach while the
    # EWMA coasts on healthy history.  The raw-only window is streak-
    # neutral: pre-fix it reset the streak and this pattern never
    # accumulated trip_after consecutive breaches.
    guard = Guardrail(OpsConfig(min_byte_hit_ewma=0.4, max_p99_ms=5.0,
                                trip_after=2, warmup_windows=0,
                                ewma_beta=0.2))
    for _ in range(4):
        assert not guard.observe(_signals(byte_hit=0.9)).suspect
    v1 = guard.observe(_signals(byte_hit=0.9, p99_ms=9.0))
    assert v1.streak == 1 and not v1.tripped
    mid = guard.observe(_signals(byte_hit=0.0))
    assert mid.suspect and not mid.breaches  # raw-only breach
    assert mid.streak == 1  # held, not reset
    v2 = guard.observe(_signals(byte_hit=0.9, p99_ms=9.0))
    assert v2.streak == 2 and v2.tripped


def test_guardrail_cooldown_ticks_through_empty_windows():
    guard = Guardrail(OpsConfig(min_byte_hit_ewma=0.4, trip_after=1,
                                warmup_windows=0, cooldown_windows=2,
                                ewma_beta=1.0))
    assert guard.observe(_signals(byte_hit=0.0)).tripped
    guard.reset_after_rollback()
    # An idle stretch after the rollback: empty windows carry no
    # samples but still burn the cooldown grace (pre-fix they were
    # skipped wholesale and could pin the guardrail disarmed forever).
    guard.observe(_signals(requests=0))
    guard.observe(_signals(requests=0))
    assert guard.observe(_signals(byte_hit=0.0)).tripped


def test_guardrail_raw_breach_marks_suspect_while_ewma_coasts():
    guard = Guardrail(OpsConfig(min_byte_hit_ewma=0.4, trip_after=2,
                                warmup_windows=2, ewma_beta=0.2))
    for _ in range(4):
        assert not guard.observe(_signals(byte_hit=0.5)).suspect
    # First degraded window: EWMA coasts at 0.5*0.8 = 0.4 (no EWMA
    # breach), but the raw 0.0 sample marks the window suspect so no
    # poisoned snapshot can be pushed.  The trip streak stays at zero.
    first = guard.observe(_signals(byte_hit=0.0))
    assert first.suspect and first.streak == 0 and not first.tripped
    # EWMA then crosses: 0.32, 0.256 -> two consecutive breaches trip.
    second = guard.observe(_signals(byte_hit=0.0))
    assert second.streak == 1 and not second.tripped
    third = guard.observe(_signals(byte_hit=0.0))
    assert third.streak == 2 and third.tripped
    assert guard.trips == 1


def test_guardrail_healthy_window_resets_streak():
    guard = Guardrail(OpsConfig(min_byte_hit_ewma=0.4, trip_after=3,
                                warmup_windows=0, ewma_beta=1.0))
    guard.observe(_signals(byte_hit=0.1))
    guard.observe(_signals(byte_hit=0.1))
    healthy = guard.observe(_signals(byte_hit=0.9))
    assert healthy.streak == 0 and not healthy.suspect
    assert guard.trips == 0


def test_guardrail_p99_and_error_thresholds_compare_raw():
    guard = Guardrail(OpsConfig(max_p99_ms=5.0, max_error_fraction=0.1,
                                trip_after=1, warmup_windows=0))
    verdict = guard.observe(_signals(p99_ms=9.0, errors=200))
    assert verdict.tripped
    names = [b[0] for b in verdict.breaches]
    assert "p99_ms" in names and "error_fraction" in names


def test_guardrail_cooldown_holds_fire_after_rollback():
    guard = Guardrail(OpsConfig(min_byte_hit_ewma=0.4, trip_after=1,
                                warmup_windows=0, cooldown_windows=2,
                                ewma_beta=1.0))
    assert guard.observe(_signals(byte_hit=0.0)).tripped
    guard.reset_after_rollback()
    assert guard.byte_hit_ewma is None  # fresh EWMA for the restored state
    v1 = guard.observe(_signals(byte_hit=0.0))
    v2 = guard.observe(_signals(byte_hit=0.0))
    assert v1.suspect and v2.suspect
    assert not v1.tripped and not v2.tripped  # cooldown grace
    assert guard.observe(_signals(byte_hit=0.0)).tripped


# --- snapshot ring --------------------------------------------------------------


def _fake_states(tag):
    return [{"kind": "serve-agent", "tag": tag}]


def test_ring_bounds_retention_and_walks_back_on_pop():
    ring = SnapshotRing(2)
    for window in (1, 2, 3):
        ring.push(window, _fake_states(window))
    assert len(ring) == 2 and ring.pushes == 3
    assert ring.windows() == [2, 3]
    assert ring.pop_latest()[0] == 3  # rollback consumes the entry...
    assert ring.pop_latest()[0] == 2  # ...so the next one walks back
    assert ring.pop_latest() is None


def test_ring_rejects_zero_capacity_and_empty_save(tmp_path):
    with pytest.raises(ValueError, match="capacity"):
        SnapshotRing(0)
    with pytest.raises(ValueError, match="empty"):
        SnapshotRing(1).save_latest(tmp_path)


def test_ring_persistence_round_trips(tmp_path):
    states = [{"kind": "serve-agent", "shard": i, "q": [0.5, -1.25]}
              for i in range(3)]
    ring = SnapshotRing(4)
    ring.push(7, states)
    assert ring.save_latest(tmp_path) == 3
    assert sorted(p.name for p in tmp_path.glob("agent-*.json")) == [
        "agent-000.json", "agent-001.json", "agent-002.json",
    ]
    assert load_fleet_states(tmp_path) == states
    with pytest.raises(FileNotFoundError):
        load_fleet_states(tmp_path / "missing")


def test_save_fleet_states_leaves_no_tmp_files(tmp_path):
    save_fleet_states(_fake_states(1), tmp_path)
    assert list(tmp_path.glob("*.tmp")) == []


# --- sabotage (the injected bad deploy) -----------------------------------------


def test_sabotaged_states_load_through_grid_validation():
    from repro.serve.metrics import MetricsRecorder
    from repro.serve.service import CacheService, replay_requests

    config = _config()
    policy = config.build_policy()
    service = CacheService(
        config.build_store(policy),
        recorder=MetricsRecorder(policy=policy.name, workload="zipf_scan"),
        config=config,
    )
    replay_requests(service, _zipf_requests(800))
    trained = service.agent_states()
    bad = sabotaged_states(trained)
    assert bad[0]["qtable"]["tables"] != trained[0]["qtable"]["tables"]
    # both clamp bounds sit on the grid: loads cleanly through the
    # grid-validated persistence path, and survives JSON
    service.load_agent_states(bad, keep_rng=True)
    assert json.loads(json.dumps(bad)) == bad


# --- recovery end to end --------------------------------------------------------


def test_degradation_trips_guardrail_and_rollback_recovers():
    result = _guarded_run(5)
    kinds = [e["kind"] for e in result.events]
    assert EVENT_DEGRADE in kinds
    assert EVENT_TRIP in kinds and EVENT_ROLLBACK in kinds
    assert kinds.index(EVENT_TRIP) > kinds.index(EVENT_DEGRADE)
    # rollback restores a pre-degradation learned state and the cache
    # comes back: the final windows hit again
    tail = [w for w in result.windows if w["window"] >= result.windows[-1]["window"] - 2]
    assert any(w["champion_byte_hit"] > 0.0 for w in tail)
    # the guarded run must beat the same degradation unguarded
    unguarded = run_ops(
        _phase_requests(),
        _config(),
        OpsConfig(window=200, degrade_at_window=6),
    )
    assert unguarded.rollbacks == 0
    assert result.champion.byte_hit_ratio > unguarded.champion.byte_hit_ratio


def test_rollback_walks_back_past_poisoned_snapshots():
    result = _guarded_run(5)
    restored = [
        e["restored_window"] for e in result.events if e["kind"] == EVENT_ROLLBACK
    ]
    assert restored  # at least one rollback fired
    # consumed-on-restore: a rollback can never restore the same ring
    # entry twice (pop_latest removes it), so restored windows are
    # unique, and each restore reaches strictly into the past of the
    # trip that triggered it
    assert len(set(restored)) == len(restored)
    trip_windows = [e["window"] for e in result.events if e["kind"] == EVENT_TRIP]
    for trip, good in zip(trip_windows, restored):
        assert good < trip
    # restored snapshots were judged healthy when pushed (never a
    # window the guardrail marked suspect)
    suspect_windows = {
        w["window"] for w in result.windows if w.get("guard_suspect")
    }
    assert not (set(restored) & suspect_windows)


# --- promotion ------------------------------------------------------------------


def test_challenger_promotion_fires_once_and_is_deterministic():
    # promote_margin=-1 makes every measured window a challenger win:
    # promotion must fire exactly once, at the earliest legal boundary.
    ops = OpsConfig(
        window=200,
        challenger_policy="chrome",
        promote_after=2,
        promote_margin=-1.0,
        snapshot_every=0,
    )
    runs = [
        run_ops(_zipf_requests(), _config(num_clients=c), ops) for c in (1, 5)
    ]
    assert runs[0] == runs[1]
    result = runs[0]
    assert result.promotions == 1
    promotes = [e for e in result.events if e["kind"] == EVENT_PROMOTE]
    assert len(promotes) == 1
    assert promotes[0]["challenger"] == "chrome"
    assert promotes[0]["win_streak"] == 2
    # the outgoing champion was snapshotted as the rollback target
    assert result.snapshots == 1
    assert [e["kind"] for e in result.events].count(EVENT_SNAPSHOT) == 0


# --- cluster fleet --------------------------------------------------------------


def test_cluster_fleet_rollback_is_client_count_invariant():
    # 3 shard-sized caches run a lower healthy byte-hit than the single
    # service, so the fleet floor sits below the single-service one.
    guarded_fleet = replace(_GUARDED, min_byte_hit_ewma=0.02)
    results = []
    for clients in (1, 64):
        results.append(
            run_cluster_ops(
                _phase_requests(),
                _config(num_clients=clients),
                3,
                guarded_fleet,
                federate_every=500,
            )
        )
    assert results[0] == results[1]
    result = results[0]
    assert result.degradations == 1 and result.rollbacks >= 1
    # fleet snapshots are fleet-shaped: rollback restored all 3 shards
    rollbacks = [e for e in result.events if e["kind"] == EVENT_ROLLBACK]
    assert all(e["agents"] == 3 for e in rollbacks)


def test_cluster_broadcast_load_replicates_one_state_fleet_wide():
    from repro.cluster.cluster import ClusterService

    cluster = ClusterService(_config(), 3)
    for seq, req in enumerate(_zipf_requests(900)):
        cluster.process(seq, req)
    states = cluster.agent_states()
    assert len(states) == 3
    # broadcast a recognizably distinct single state (the sabotage
    # shape) and every shard must adopt it
    bad = sabotaged_states([states[0]])
    assert bad[0]["qtable"]["tables"] != states[0]["qtable"]["tables"]
    cluster.load_agent_states(bad, keep_rng=True)
    for state in cluster.agent_states():
        assert state["qtable"]["tables"] == bad[0]["qtable"]["tables"]


# --- config plumbing ------------------------------------------------------------


def test_ops_config_round_trips_through_params():
    ops = _GUARDED
    assert OpsConfig.from_params(ops.params()) == ops
    assert OpsConfig().params() == OpsConfig.from_params(OpsConfig().params()).params()


def test_ops_config_enablement_properties():
    assert not OpsConfig().shadow_enabled
    assert not OpsConfig().guard_enabled
    assert OpsConfig(challenger_policy="lru").shadow_enabled
    assert OpsConfig(min_byte_hit_ewma=0.1).guard_enabled
    assert OpsConfig(max_p99_ms=5.0).guard_enabled
    assert OpsConfig(max_error_fraction=0.5).guard_enabled
