"""Unit tests for the CARE policy (concurrency-aware insertion/promotion)."""

from repro.sim.access import DEMAND, WRITEBACK, AccessInfo
from repro.sim.cache import Cache
from repro.sim.replacement.care import REUSE_THRESHOLD, CAREPolicy
from repro.sim.replacement.srrip import RRPV_MAX


def _info(block, pc=0x400, core=0, type_=DEMAND):
    return AccessInfo(pc=pc, address=block << 6, block_addr=block, core=core, type=type_)


def _cache(ways=2, sets=4, sampled=4, cores=2):
    policy = CAREPolicy(sampled_sets=sampled, num_cores=cores)
    cache = Cache(
        name="llc", size_bytes=64 * ways * sets, ways=ways, latency=1.0, policy=policy
    )
    return cache, policy


def test_default_insertion_near_mru_when_unobstructed():
    cache, policy = _cache()
    cache.fill(_info(0))
    way = cache._tag_maps[0][0]
    assert policy._rrpv[0][way] == 0


def test_obstructed_core_insertion_demoted():
    cache, policy = _cache()
    policy.observe_epoch([True, False])
    cache.fill(_info(0, core=0))
    way = cache._tag_maps[0][0]
    assert policy._rrpv[0][way] == 1
    cache.fill(_info(1, core=1))
    way1 = cache._tag_maps[1][0]
    assert policy._rrpv[1][way1] == 0


def test_non_reusable_pc_inserted_distant():
    cache, policy = _cache()
    sig = policy._signature(_info(0, pc=0x999))
    policy._predictor[sig] = 0
    cache.fill(_info(0, pc=0x999))
    way = cache._tag_maps[0][0]
    assert policy._rrpv[0][way] == RRPV_MAX - 1
    policy.observe_epoch([True, True])
    cache.fill(_info(1, pc=0x999))
    way1 = cache._tag_maps[1][0]
    assert policy._rrpv[1][way1] == RRPV_MAX


def test_hit_promotion_full_vs_partial():
    cache, policy = _cache(ways=2, sets=1)
    cache.fill(_info(0))
    way = cache._tag_maps[0][0]
    policy._rrpv[0][way] = 3
    cache.access(_info(0))
    assert policy._rrpv[0][way] == 0  # full promotion when unobstructed
    policy.observe_epoch([True, True])
    policy._rrpv[0][way] = 3
    cache.access(_info(0))
    assert policy._rrpv[0][way] == 2  # partial promotion when obstructed


def test_sampled_training_rewards_reuse():
    cache, policy = _cache(ways=2, sets=4, sampled=4)
    pc = 0x700
    cache.fill(_info(0, pc=pc))
    sig = policy._sig[0][cache._tag_maps[0][0]]
    before = policy._predictor.get(sig, REUSE_THRESHOLD)
    cache.access(_info(0, pc=pc))
    assert policy._predictor[sig] == before + 1


def test_dead_eviction_detrains():
    cache, policy = _cache(ways=1, sets=1, sampled=1)
    cache.fill(_info(0, pc=0x800))
    sig = policy._sig[0][0]
    cache.fill(_info(1, pc=0x900))
    assert policy._predictor[sig] < REUSE_THRESHOLD


def test_writeback_inserted_distant():
    cache, policy = _cache()
    cache.fill(_info(0, type_=WRITEBACK), dirty=True)
    way = cache._tag_maps[0][0]
    assert policy._rrpv[0][way] == RRPV_MAX


def test_observe_epoch_tolerates_extra_cores():
    _, policy = _cache(cores=2)
    policy.observe_epoch([True, False, True, True])  # extra flags ignored
    assert policy._obstructed == [True, False]


def test_never_bypasses():
    _, policy = _cache()
    assert policy.should_bypass(_info(0)) is False
