"""Smoke checks for the example scripts.

Examples run multi-minute simulations, so these tests only verify that
each script compiles, has a main(), and documents itself — the examples
are exercised for real by humans (and their core code paths are covered
by the integration tests).
"""

import ast
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "policy_shootout.py",
        "graph_analytics.py",
        "custom_policy.py",
        "workload_atlas.py",
    } <= names
    assert len(EXAMPLES) >= 3  # deliverable (b): at least three examples


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    tree = ast.parse(path.read_text())
    names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
    assert "main" in names, f"{path.name} should define main()"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_docstring_and_run_line(path):
    tree = ast.parse(path.read_text())
    doc = ast.get_docstring(tree)
    assert doc and "Run:" in doc, f"{path.name} should document how to run it"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_guards_main(path):
    source = path.read_text()
    assert '__name__ == "__main__"' in source
