"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ChromeConfig, MISS_ACTIONS, NUM_ACTIONS
from repro.core.eq import EQEntry, EvaluationQueue
from repro.core.qtable import QTable
from repro.experiments.metrics import geometric_mean, weighted_speedup
from repro.sim.access import DEMAND, AccessInfo
from repro.sim.cache import Cache
from repro.sim.camat import CoreCAMATState
from repro.sim.mshr import MSHRFile
from repro.sim.replacement.lru import LRUPolicy
from repro.sim.replacement.optgen import OPTgen

# --- cache invariants -----------------------------------------------------


def _info(block):
    return AccessInfo(pc=0x400, address=block << 6, block_addr=block, core=0, type=DEMAND)


@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_cache_occupancy_never_exceeds_capacity(blocks):
    cache = Cache("t", 64 * 2 * 8, 2, latency=1.0, policy=LRUPolicy())
    for b in blocks:
        info = _info(b)
        hit, _ = cache.access(info)
        if not hit:
            cache.fill(_info(b))
    assert cache.occupancy() <= 16


@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_cache_tag_map_consistent_with_blocks(blocks):
    cache = Cache("t", 64 * 2 * 4, 2, latency=1.0, policy=LRUPolicy())
    for b in blocks:
        cache.fill(_info(b))
    for s in range(cache.num_sets):
        for tag, way in cache._tag_maps[s].items():
            block = cache.blocks_in_set(s)[way]
            assert block.valid
            assert block.tag == tag


@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_just_filled_block_is_resident(blocks):
    cache = Cache("t", 64 * 4 * 4, 4, latency=1.0, policy=LRUPolicy())
    for b in blocks:
        cache.fill(_info(b))
        assert cache.probe(b)


@given(
    st.lists(st.integers(min_value=0, max_value=7), min_size=17, max_size=60),
)
@settings(max_examples=30, deadline=None)
def test_lru_small_working_set_always_hits_after_warm(blocks):
    """8 distinct blocks in a 16-block cache: after each block is seen
    once, LRU never misses again."""
    cache = Cache("t", 64 * 2 * 8, 2, latency=1.0, policy=LRUPolicy())
    seen = set()
    for b in blocks:
        info = _info(b)
        hit, _ = cache.access(info)
        if b in seen:
            assert hit
        if not hit:
            cache.fill(_info(b))
        seen.add(b)


# --- MSHR invariants ---------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=31),  # block
            st.floats(min_value=0, max_value=1000),  # issue time offset
        ),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=50, deadline=None)
def test_mshr_occupancy_bounded(requests):
    mshr = MSHRFile(4)
    now = 0.0
    for block, dt in sorted(requests, key=lambda t: t[1]):
        now = max(now, dt)
        mshr.allocate(block, now, now + 100.0)
        assert mshr.occupancy <= 4


@given(st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_mshr_completion_never_before_issue(blocks):
    mshr = MSHRFile(2)
    now = 0.0
    for b in blocks:
        completion = mshr.allocate(b, now, now + 10.0)
        assert completion >= now
        now += 1.0


# --- C-AMAT invariants -----------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e4),
            st.floats(min_value=0.1, max_value=500),
        ),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=50, deadline=None)
def test_camat_union_bounds(intervals):
    """Active cycles are at most the sum of services (no overlap) and at
    least the longest single service (full overlap)."""
    state = CoreCAMATState()
    ordered = sorted(intervals)
    for start, service in ordered:
        state.record(start, service)
    total_service = sum(s for _, s in intervals)
    longest = max(s for _, s in intervals)
    assert state.total_active_cycles <= total_service + 1e-6
    assert state.total_active_cycles >= longest - 1e-6
    assert state.total_accesses == len(intervals)


# --- Q-table invariants --------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1 << 16),
            st.integers(min_value=0, max_value=1 << 16),
            st.integers(min_value=0, max_value=NUM_ACTIONS - 1),
            st.floats(min_value=-100, max_value=100),
        ),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=30, deadline=None)
def test_qtable_values_always_clamped(updates):
    config = ChromeConfig()
    qt = QTable(2, config)
    limit = (1 << (config.q_value_bits - 1)) / (
        1 << config.q_fixed_point_fraction_bits
    )
    for f1, f2, action, delta in updates:
        qt.apply_delta((f1, f2), action, delta)
        values = qt.q_values((f1, f2))
        for v in values:
            assert -config.num_subtables * limit <= v <= config.num_subtables * limit


@given(
    st.integers(min_value=0, max_value=1 << 16),
    st.integers(min_value=0, max_value=1 << 16),
    st.floats(min_value=-20, max_value=20),
)
@settings(max_examples=50, deadline=None)
def test_qtable_delta_direction(f1, f2, delta):
    qt = QTable(2, ChromeConfig())
    before = qt.q((f1, f2), 1)
    qt.apply_delta((f1, f2), 1, delta)
    after = qt.q((f1, f2), 1)
    if delta > 0.5:
        assert after >= before
    elif delta < -0.5:
        assert after <= before


# --- EQ invariants ------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=120))
@settings(max_examples=50, deadline=None)
def test_eq_fifo_order_and_bound(addr_hashes):
    eq = EvaluationQueue(num_queues=1, fifo_size=8)
    inserted = []
    for h in addr_hashes:
        entry = EQEntry((1, 2), MISS_ACTIONS[0], False, h, 0)
        evicted, _ = eq.insert(0, entry)
        inserted.append(entry)
        if evicted is not None:
            # FIFO: evictions come out in insertion order.
            assert evicted is inserted[eq.evictions - 1]
        assert eq.occupancy(0) <= 8


# --- OPTgen invariants --------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=10), min_size=2, max_size=200))
@settings(max_examples=50, deadline=None)
def test_optgen_hit_rate_bounded(blocks):
    gen = OPTgen(cache_ways=4)
    for b in blocks:
        gen.access(b, pc=1, is_prefetch=False)
    assert 0.0 <= gen.opt_hit_rate <= 1.0


@given(st.integers(min_value=1, max_value=4))
@settings(max_examples=20, deadline=None)
def test_optgen_single_block_always_hits(ways):
    gen = OPTgen(cache_ways=ways)
    for _ in range(20):
        gen.access(0xAA, pc=1, is_prefetch=False)
    assert gen.opt_hit_rate == 1.0


# --- metric properties ---------------------------------------------------------------


@given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_geometric_mean_within_range(values):
    gm = geometric_mean(values)
    assert min(values) - 1e-9 <= gm <= max(values) + 1e-9


@given(
    st.lists(st.floats(min_value=0.01, max_value=10), min_size=1, max_size=16),
)
@settings(max_examples=100, deadline=None)
def test_weighted_speedup_identity_property(ipcs):
    assert weighted_speedup(ipcs, ipcs) == 1.0


@given(
    st.lists(st.floats(min_value=0.01, max_value=10), min_size=1, max_size=16),
    st.floats(min_value=1.1, max_value=3.0),
)
@settings(max_examples=100, deadline=None)
def test_weighted_speedup_scaling(ipcs, factor):
    faster = [i * factor for i in ipcs]
    assert weighted_speedup(faster, ipcs) > 1.0
