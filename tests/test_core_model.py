"""Unit tests for the ROB-window core timing model."""

from repro.sim.core_model import CoreConfig, CoreTimingModel


def test_nonmemory_instructions_retire_at_width():
    core = CoreTimingModel(CoreConfig(width=4))
    core.advance(gap=39)  # 39 non-mem + 1 mem = 40 instructions
    assert core.instructions == 40
    assert core.issue_cycle == 10.0


def test_l1_hits_are_hidden():
    core = CoreTimingModel(CoreConfig(width=1, l1_hit_hidden=5.0))
    core.advance(0)
    core.complete_load(5.0)
    assert core.outstanding_loads == 0
    assert core.finish() == core.issue_cycle


def test_long_load_extends_finish():
    core = CoreTimingModel(CoreConfig(width=1))
    core.advance(0)
    core.complete_load(200.0)
    assert core.finish() == core.issue_cycle + 200.0


def test_independent_misses_overlap_within_rob():
    cfg = CoreConfig(width=1, rob_size=512)
    core = CoreTimingModel(cfg)
    # Two misses 1 instruction apart, each 300 cycles.
    core.advance(0)
    core.complete_load(300.0)
    core.advance(0)
    core.complete_load(300.0)
    # Finish ~= 2 + 300, NOT 600: the misses overlapped.
    assert core.finish() < 350.0


def test_rob_fill_serializes_misses():
    cfg = CoreConfig(width=1, rob_size=4)
    core = CoreTimingModel(cfg)
    finishes = []
    for _ in range(8):
        core.advance(0)
        core.complete_load(100.0)
        finishes.append(core.finish())
    # With a 4-entry ROB, every 4th load must wait for an older one:
    # total time far exceeds the fully-overlapped bound.
    assert core.finish() > 150.0
    assert core.stall_cycles > 0


def test_large_rob_no_stalls_for_sparse_misses():
    core = CoreTimingModel(CoreConfig(width=1, rob_size=512))
    for _ in range(4):
        core.advance(100)
        core.complete_load(50.0)
    assert core.stall_cycles == 0.0


def test_snapshot_returns_progress():
    core = CoreTimingModel(CoreConfig(width=2))
    core.advance(9)
    instr, cycles = core.snapshot()
    assert instr == 10
    assert cycles == 5.0


def test_current_cycle_monotonic():
    core = CoreTimingModel()
    last = core.current_cycle
    for gap in (0, 5, 2, 7):
        core.advance(gap)
        assert core.current_cycle >= last
        last = core.current_cycle
