"""Backend differential suite: numpy must reproduce every committed golden.

The scalar backend is the golden reference; the numpy backend
(DESIGN.md §9) is a pure throughput knob.  This module flips
``REPRO_BACKEND=numpy`` and recomputes *all five* golden families from
:mod:`tests.test_golden_determinism` — sim determinism, serve, chaos
faults, the sharded cluster and the ops control loop — and demands
byte-identity with the
committed golden files.  It also asserts the numpy backend actually
engaged (a silent fallback to scalar would make the comparison
vacuous), and pins down the backend-selection plumbing itself.
"""

from __future__ import annotations

import json

import pytest

from repro.core.backend import VALID_BACKENDS, make_qtable, resolve_backend
from repro.core.config import ChromeConfig
from repro.core.qtable import QTable
from repro.core.qtable_np import QTableNumpy
from tests.test_golden_determinism import (
    CLUSTER_GOLDEN_PATH,
    GOLDEN_PATH,
    OPS_GOLDEN_PATH,
    SERVE_FAULTS_GOLDEN_PATH,
    SERVE_GOLDEN_PATH,
    compute_cluster_golden,
    compute_golden,
    compute_ops_golden,
    compute_serve_faults_golden,
    compute_serve_golden,
)


@pytest.fixture()
def numpy_backend(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    # Guard against a silent fallback: under the env var every
    # construction site must actually produce the numpy table.
    assert isinstance(make_qtable(2, ChromeConfig()), QTableNumpy)


def _golden(path) -> dict:
    assert path.exists(), f"missing golden file {path}"
    return json.loads(path.read_text())


# --- the four golden families under the numpy backend --------------------------


def test_sim_goldens_bit_identical_under_numpy(numpy_backend):
    assert compute_golden() == _golden(GOLDEN_PATH)


def test_serve_goldens_bit_identical_under_numpy(numpy_backend):
    assert compute_serve_golden() == _golden(SERVE_GOLDEN_PATH)


def test_serve_faults_goldens_bit_identical_under_numpy(numpy_backend):
    assert compute_serve_faults_golden() == _golden(SERVE_FAULTS_GOLDEN_PATH)


def test_cluster_goldens_bit_identical_under_numpy(numpy_backend):
    assert compute_cluster_golden() == _golden(CLUSTER_GOLDEN_PATH)


def test_ops_goldens_bit_identical_under_numpy(numpy_backend):
    # Also exercises the vectorized federation fast path (the cluster
    # case federates every 500 requests) and the numpy loader's grid
    # checks on rollback restores.
    assert compute_ops_golden() == _golden(OPS_GOLDEN_PATH)


# --- backend selection plumbing ------------------------------------------------


def test_resolve_backend_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert resolve_backend(None) == "scalar"  # default
    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    assert resolve_backend(None) == "numpy"  # env
    assert resolve_backend("scalar") == "scalar"  # explicit beats env


def test_resolve_backend_rejects_unknown(monkeypatch):
    with pytest.raises(ValueError, match="backend"):
        resolve_backend("fortran")
    monkeypatch.setenv("REPRO_BACKEND", "fortran")
    with pytest.raises(ValueError, match="REPRO_BACKEND"):
        resolve_backend(None)
    assert "scalar" in VALID_BACKENDS and "numpy" in VALID_BACKENDS


def test_make_qtable_honours_config_field(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    from dataclasses import replace

    assert isinstance(make_qtable(2, ChromeConfig()), QTable)
    config = replace(ChromeConfig(), backend="numpy")
    assert isinstance(make_qtable(2, config), QTableNumpy)
    # explicit config field beats the env var
    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    config = replace(ChromeConfig(), backend="scalar")
    assert isinstance(make_qtable(2, config), QTable)


def test_serve_policy_backend_param(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    from repro.serve.policies import make_serve_policy

    policy = make_serve_policy("chrome", seed=1, backend="numpy")
    assert isinstance(policy.agent.qtable, QTableNumpy)
    policy = make_serve_policy("chrome", seed=1)
    assert isinstance(policy.agent.qtable, QTable)


def test_cli_backend_flag_sets_env(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    import os

    from repro.cli import _apply_backend

    _apply_backend(None)
    assert "REPRO_BACKEND" not in os.environ
    _apply_backend("numpy")
    assert os.environ["REPRO_BACKEND"] == "numpy"
    with pytest.raises(ValueError, match="backend"):
        _apply_backend("cuda")


def test_store_preclassify_matches_scalar_hash():
    from repro.serve.policies import make_serve_policy
    from repro.serve.store import ObjectStore
    from repro.sim.address import mix_hash

    plain = ObjectStore(1 << 20, 64, make_serve_policy("lru"))
    swept = ObjectStore(1 << 20, 64, make_serve_policy("lru"))
    keys = [(i * 2654435761) & 0xFFFFFFFF for i in range(1000)]
    keys += keys[:100]  # duplicates must be harmless
    swept.preclassify(keys)
    for key in keys:
        expected = mix_hash(key) & 63
        assert plain.segment_of(key) == expected
        assert swept.segment_of(key) == expected
    # oversized keys: preclassify declines, segment_of still works
    swept.preclassify([2**70])
    assert swept.segment_of(5) == mix_hash(5) & 63
