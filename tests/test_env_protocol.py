"""Environment-protocol conformance suite.

Parametrized over every registered environment adapter: registering a
new domain (``register_environment``) opts it into these checks
automatically.  The suite pins the contract every adapter must honor:

* **construction** — spec-driven, no hidden globals: two instances
  built from the same overrides are independent;
* **determinism** — run-twice equality of the full result mapping
  (the engine's ``--jobs 1`` vs ``--jobs N`` guarantee depends on it);
* **result shape** — ``run()`` returns a picklable, JSON-roundtrippable
  mapping;
* **snapshots** — ``agent_states()`` round-trips through
  ``load_agent_states``: a full restore (``keep_rng=False``)
  reproduces the snapshot byte-for-byte; a hot swap
  (``keep_rng=True``) transfers Q-values while the live agent keeps
  its own RNG stream and lookup/update counters;
* **backend byte-identity** — when numpy is available, the numpy
  backend reproduces the scalar result exactly.

Small overrides keep each adapter's run to a few thousand steps so the
whole matrix stays test-suite fast.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.env import available_environments, build_environment


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True

#: per-adapter overrides to keep conformance runs small
SMALL = {
    "sim": dict(accesses_per_core=600, warmup_accesses=150),
    "serve": dict(num_requests=600, warmup_requests=120),
    "cluster": dict(num_requests=600),
    "toy": dict(num_steps=1500),
}


def build_small(name: str, **extra):
    return build_environment(name, **{**SMALL.get(name, {}), **extra})


def environments():
    return available_environments()


@pytest.mark.parametrize("name", environments())
def test_env_registered_and_named(name):
    env = build_small(name)
    assert env.name == name
    assert isinstance(env.snapshot_kind, str) and env.snapshot_kind


@pytest.mark.parametrize("name", environments())
def test_env_run_twice_identical(name):
    r1 = build_small(name).run()
    r2 = build_small(name).run()
    assert r1 == r2


@pytest.mark.parametrize("name", environments())
def test_env_result_is_portable(name):
    result = build_small(name).run()
    assert isinstance(result, dict)
    assert pickle.loads(pickle.dumps(result)) == result
    assert json.loads(json.dumps(result)) == json.loads(json.dumps(result))


@pytest.mark.parametrize("name", environments())
def test_env_seed_changes_result(name):
    base = build_small(name).run()
    other = build_small(name, seed=12345).run()
    assert base != other


@pytest.mark.parametrize("name", environments())
def test_env_snapshot_full_restore_roundtrip(name):
    env = build_small(name)
    env.run()
    states = env.agent_states()
    assert isinstance(states, list) and states
    for state in states:
        assert state["kind"] == env.snapshot_kind

    fresh = build_small(name)
    fresh.load_agent_states(states, keep_rng=False)
    assert fresh.agent_states() == states


@pytest.mark.parametrize("name", environments())
def test_env_snapshot_hot_swap_keeps_rng(name):
    env = build_small(name)
    env.run()
    states = env.agent_states()

    fresh = build_small(name)
    before = fresh.agent_states()
    fresh.load_agent_states(states, keep_rng=True)
    after = fresh.agent_states()

    for prev, now, snap in zip(before, after, states):
        # Q-values transferred from the snapshot...
        assert now["qtable"]["tables"] == snap["qtable"]["tables"]
        # ...but the live agent kept its own RNG stream and counters.
        assert now["rng_state"] == prev["rng_state"]
        assert now["qtable"]["lookups"] == prev["qtable"]["lookups"]
        assert now["qtable"]["updates"] == prev["qtable"]["updates"]


@pytest.mark.parametrize("name", environments())
def test_env_snapshot_restore_resumes_identically(name):
    """Restore-then-inspect: a restored twin exposes the same state."""
    env = build_small(name)
    env.run()
    states = env.agent_states()

    twin = build_small(name)
    twin.load_agent_states(states, keep_rng=False)
    assert twin.agent_states() == env.agent_states()


@pytest.mark.skipif(not _numpy_available(), reason="numpy not installed")
@pytest.mark.parametrize("name", environments())
def test_env_backend_byte_identity(name):
    scalar = build_small(name, backend="scalar").run()
    vector = build_small(name, backend="numpy").run()
    assert scalar == vector


# --- engine integration ---------------------------------------------------------


def test_env_job_spec_roundtrip():
    from repro.env.jobs import ENV_CODE_VERSION, env_job

    job = env_job("toy", num_steps=1500, seed=3)
    assert job.env_params == (("num_steps", 1500), ("seed", 3))
    assert job.canonical() == (
        "env",
        ENV_CODE_VERSION,
        "toy",
        (("num_steps", 1500), ("seed", 3)),
    )
    assert hash(job) == hash(env_job("toy", seed=3, num_steps=1500))
    assert job.label == "env:toy"


def test_env_job_executes_like_direct_run():
    from repro.env.jobs import env_job
    from repro.experiments import execute_job

    job = env_job("toy", num_steps=1500, seed=3)
    direct = build_environment("toy", num_steps=1500, seed=3).run()
    assert execute_job(job) == direct
    assert job.execute() == direct


def test_env_toy_plan_parallel_bit_identical():
    """env_toy through the engine: --jobs 1 == --jobs 2, byte for byte."""
    from repro.env.experiments import env_toy_plan
    from repro.experiments.engine import Engine
    from repro.experiments.runner import ExperimentScale

    tiny = ExperimentScale(accesses_per_core=4000, warmup_per_core=1000)
    serial = Engine(workers=1).run_plan(env_toy_plan(tiny))
    parallel = Engine(workers=2).run_plan(env_toy_plan(tiny))
    assert serial == parallel
    assert serial.experiment_id == "env_toy"
    assert serial.rows
