"""Unit tests for trace containers and iteration semantics."""

import pytest

from repro.traces.trace import MemoryAccess, Trace, from_tuples


def _records(n=5):
    return [MemoryAccess(pc=0x400000 + i, address=i * 64, gap=i) for i in range(n)]


def test_memory_access_fields():
    rec = MemoryAccess(pc=1, address=2, is_write=True, gap=3)
    assert (rec.pc, rec.address, rec.is_write, rec.gap) == (1, 2, True, 3)


def test_memory_access_is_immutable():
    rec = MemoryAccess(pc=1, address=2)
    with pytest.raises(AttributeError):
        rec.pc = 5


def test_trace_requires_exactly_one_source():
    with pytest.raises(ValueError):
        Trace(name="bad")
    with pytest.raises(ValueError):
        Trace(name="bad", records=[], factory=lambda: iter([]))


def test_materialized_trace_iterates_and_lens():
    trace = Trace(name="t", records=_records())
    assert len(trace) == 5
    assert [r.gap for r in trace] == [0, 1, 2, 3, 4]


def test_factory_trace_replays_from_start():
    trace = Trace(name="t", factory=lambda: iter(_records(3)))
    first = list(trace)
    second = list(trace)
    assert first == second
    assert len(first) == 3


def test_factory_trace_len_raises():
    trace = Trace(name="t", factory=lambda: iter(_records(3)))
    with pytest.raises(TypeError):
        len(trace)


def test_materialize_converts_factory():
    trace = Trace(name="t", factory=lambda: iter(_records(4)))
    solid = trace.materialize()
    assert len(solid) == 4
    assert solid.materialize() is solid  # already materialized: identity


def test_with_address_offset_shifts_only_addresses():
    trace = Trace(name="t", records=_records(3))
    shifted = trace.with_address_offset(1 << 20)
    for base, moved in zip(trace, shifted):
        assert moved.address == base.address + (1 << 20)
        assert moved.pc == base.pc
        assert moved.gap == base.gap


def test_truncated_limits_record_count():
    trace = Trace(name="t", records=_records(10))
    assert len(list(trace.truncated(4))) == 4
    assert len(list(trace.truncated(100))) == 10


def test_from_tuples_defaults():
    trace = from_tuples("t", [(1, 64), (2, 128, True), (3, 192, False, 7)])
    records = list(trace)
    assert records[0] == MemoryAccess(1, 64, False, 0)
    assert records[1].is_write is True
    assert records[2].gap == 7
