"""Scalar vs. numpy Q-table equivalence (backends must be bit-identical).

The numpy backend (:mod:`repro.core.qtable_np`) is a drop-in for the
scalar reference; DESIGN.md §9 argues why the fixed-point grid makes
them exact.  These tests *check* that argument: interleaved per-op
streams, batch kernels vs. scalar sequences, and persistence round
trips must all agree to the last bit.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import HIT_ACTIONS, MISS_ACTIONS, NUM_ACTIONS, ChromeConfig
from repro.core.qtable import QTable
from repro.core.qtable_np import QTableNumpy


def _pair():
    config = ChromeConfig()
    return QTable(2, config), QTableNumpy(2, config)


def _tables_equal(scalar: QTable, vectorized: QTableNumpy) -> bool:
    return scalar.state_dict()["tables"] == vectorized.state_dict()["tables"]


# --- interleaved per-op equivalence (hypothesis, derandomized) ----------------

_state = st.tuples(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=2**32 - 1),
)
_op = st.one_of(
    st.tuples(st.just("delta"), _state, st.integers(0, NUM_ACTIONS - 1),
              st.floats(-8.0, 8.0, allow_nan=False)),
    st.tuples(st.just("best"), _state,
              st.sampled_from([MISS_ACTIONS, HIT_ACTIONS, (2,), (0, 3)])),
    st.tuples(st.just("q"), _state, st.integers(0, NUM_ACTIONS - 1)),
)


@given(st.lists(_op, min_size=1, max_size=120))
@settings(max_examples=60, deadline=None, derandomize=True)
def test_interleaved_ops_bit_identical(ops):
    scalar, vectorized = _pair()
    for op in ops:
        if op[0] == "delta":
            _, state, action, delta = op
            scalar.apply_delta(state, action, delta)
            vectorized.apply_delta(state, action, delta)
        elif op[0] == "best":
            _, state, legal = op
            assert scalar.best_action(state, legal) == vectorized.best_action(
                state, legal
            )
        else:
            _, state, action = op
            assert scalar.q(state, action) == vectorized.q(state, action)
            assert scalar.q_values(state) == vectorized.q_values(state)
    assert _tables_equal(scalar, vectorized)
    assert scalar.lookups == vectorized.lookups
    assert scalar.updates == vectorized.updates


@given(
    st.lists(st.tuples(_state, st.integers(0, NUM_ACTIONS - 1),
                       st.floats(-4.0, 4.0, allow_nan=False)),
             min_size=1, max_size=200),
)
@settings(max_examples=60, deadline=None, derandomize=True)
def test_batch_kernels_match_scalar_sequence(records):
    """apply_deltas/best_actions == the scalar per-record loop, even with
    colliding states (hypothesis happily generates duplicates)."""
    scalar, vectorized = _pair()
    states = [r[0] for r in records]
    actions = [r[1] for r in records]
    deltas = [r[2] for r in records]
    for state, action, delta in zip(states, actions, deltas):
        scalar.apply_delta(state, action, delta)
    vectorized.apply_deltas(states, actions, deltas)
    assert _tables_equal(scalar, vectorized)
    assert vectorized.best_actions(states, MISS_ACTIONS) == [
        scalar.best_action(s, MISS_ACTIONS) for s in states
    ]


def test_batch_kernels_accept_readonly_arrays():
    """The array fast path (and its row memo) equals the tuple path."""
    scalar, vectorized = _pair()
    states = [((i * 37) & 0xFFFF, (i * 101) & 0x3FFF) for i in range(256)]
    states += states[:64]  # forced collisions -> multi-pass apply_deltas
    actions = [i & 3 for i in range(len(states))]
    deltas = [0.0625 * ((i % 9) - 4) for i in range(len(states))]
    arr = np.asarray(states, dtype=np.uint64)
    arr.flags.writeable = False
    for _ in range(3):  # repeated sweeps exercise the row-index memo
        for state, action, delta in zip(states, actions, deltas):
            scalar.apply_delta(state, action, delta)
        vectorized.apply_deltas(arr, actions, deltas)
        assert vectorized.best_actions(arr, MISS_ACTIONS) == [
            scalar.best_action(s, MISS_ACTIONS) for s in states
        ]
    assert _tables_equal(scalar, vectorized)


def test_batch_tie_break_prefers_first_legal_action():
    _, vectorized = _pair()
    # Fresh table: every action ties, so every decision must be the
    # first legal action (the scalar loop's preference).
    states = [(i, i + 7) for i in range(32)]
    assert vectorized.best_actions(states, (2, 0, 3)) == [2] * 32


def test_oversized_state_falls_back_to_scalar_path():
    scalar, vectorized = _pair()
    states = [(2**70, 5), (3, 4)]  # first value does not fit uint64
    actions = [1, 2]
    deltas = [0.5, -0.25]
    for state, action, delta in zip(states, actions, deltas):
        scalar.apply_delta(state, action, delta)
    vectorized.apply_deltas(states, actions, deltas)
    assert _tables_equal(scalar, vectorized)
    assert vectorized.best_actions(states, MISS_ACTIONS) == [
        scalar.best_action(s, MISS_ACTIONS) for s in states
    ]


# --- persistence round trips ---------------------------------------------------


def _trained_scalar() -> QTable:
    scalar = QTable(2, ChromeConfig())
    for i in range(500):
        scalar.apply_delta(((i * 13) & 0xFFF, (i * 7) & 0xFFF), i & 3,
                           0.0625 * ((i % 11) - 5))
    return scalar


def test_persistence_round_trip_scalar_numpy_scalar():
    """scalar -> JSON -> numpy -> JSON -> scalar: bit-identical."""
    scalar = _trained_scalar()
    blob1 = json.dumps(scalar.state_dict(), sort_keys=True)

    vectorized = QTableNumpy(2, ChromeConfig())
    vectorized.load_state_dict(json.loads(blob1))
    blob2 = json.dumps(vectorized.state_dict(), sort_keys=True)
    assert blob2 == blob1

    restored = QTable(2, ChromeConfig())
    restored.load_state_dict(json.loads(blob2))
    assert json.dumps(restored.state_dict(), sort_keys=True) == blob1
    # and the restored tables behave identically
    probe = [(9, 9), (1234, 77), (0xFFF, 0xFFF)]
    for state in probe:
        assert restored.q_values(state) == vectorized.q_values(state)


def test_numpy_load_rejects_off_grid_values():
    scalar = _trained_scalar()
    state = scalar.state_dict()
    state["tables"][0][0][0][0] = 0.01  # not a multiple of 2^-6
    vectorized = QTableNumpy(2, ChromeConfig())
    with pytest.raises(ValueError, match="fixed-point grid"):
        vectorized.load_state_dict(state)


def test_numpy_load_rejects_geometry_mismatch():
    vectorized = QTableNumpy(2, ChromeConfig())
    state = QTable(2, ChromeConfig()).state_dict()
    state["num_subtables"] += 1
    with pytest.raises(ValueError, match="geometry mismatch"):
        vectorized.load_state_dict(state)


# --- introspection parity ------------------------------------------------------


def test_stats_and_storage_parity():
    scalar, vectorized = _pair()
    for i in range(200):
        state = ((i * 31) & 0x7FF, (i * 17) & 0x7FF)
        scalar.apply_delta(state, i & 3, 0.25)
        vectorized.apply_delta(state, i & 3, 0.25)
    assert vectorized.storage_bits() == scalar.storage_bits()
    assert vectorized.health_stats() == scalar.health_stats()
    assert vectorized.snapshot_stats() == scalar.snapshot_stats()
