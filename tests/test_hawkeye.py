"""Unit tests for the Hawkeye policy."""

from repro.sim.access import DEMAND, PREFETCH, WRITEBACK, AccessInfo
from repro.sim.cache import Cache
from repro.sim.replacement.hawkeye import (
    FRIENDLY_THRESHOLD,
    RRPV_MAX,
    HawkeyePolicy,
)


def _info(block, pc=0x400, type_=DEMAND):
    return AccessInfo(pc=pc, address=block << 6, block_addr=block, core=0, type=type_)


def _cache(ways=2, sets=4, sampled=4):
    policy = HawkeyePolicy(sampled_sets=sampled)
    cache = Cache(
        name="llc", size_bytes=64 * ways * sets, ways=ways, latency=1.0, policy=policy
    )
    return cache, policy


def test_attach_builds_optgen_per_sampled_set():
    _, policy = _cache(sets=8, sampled=4)
    assert len(policy._optgen) == 4


def test_default_prediction_is_friendly():
    _, policy = _cache()
    assert policy._predict_friendly(_info(0))


def test_friendly_fill_inserts_rrpv_zero():
    cache, policy = _cache(ways=2, sets=4)
    cache.fill(_info(0))
    way = cache._tag_maps[0][0]
    assert policy._rrpv[0][way] == 0


def test_averse_pc_fills_at_max_rrpv():
    cache, policy = _cache(ways=2, sets=4)
    sig = policy._signature(0x400, False)
    policy._predictor[sig] = 0  # force cache-averse
    cache.fill(_info(0, pc=0x400))
    way = cache._tag_maps[0][0]
    assert policy._rrpv[0][way] == RRPV_MAX


def test_victim_prefers_averse_blocks():
    cache, policy = _cache(ways=2, sets=1)
    cache.fill(_info(0))
    cache.fill(_info(1))
    policy._rrpv[0][cache._tag_maps[0][0]] = RRPV_MAX
    cache.fill(_info(2))
    assert not cache.probe(0)
    assert cache.probe(1)


def test_evicting_friendly_block_detrains_its_pc():
    cache, policy = _cache(ways=1, sets=1, sampled=0)
    cache.fill(_info(0, pc=0x1234))
    sig = policy._fill_sig[0][0]
    before = policy._predictor.get(sig, FRIENDLY_THRESHOLD)
    cache.fill(_info(1, pc=0x9999))  # evicts the friendly block
    assert policy._predictor[sig] == before - 1


def test_optgen_training_flips_prediction():
    """A PC whose blocks never fit gets classified cache-averse."""
    cache, policy = _cache(ways=1, sets=1, sampled=1)
    pc = 0xBEEF
    # Thrash two blocks through a 1-way sampled set repeatedly:
    # every re-reference is an OPT miss, detraining the PC.
    for i in range(16):
        block = i % 2
        info = _info(block, pc=pc)
        hit, _ = cache.access(info)
        if not hit:
            cache.fill(_info(block, pc=pc))
    assert not policy._predict_friendly(_info(0, pc=pc))


def test_reused_pc_stays_friendly():
    cache, policy = _cache(ways=2, sets=1, sampled=1)
    pc = 0xCAFE
    for _ in range(16):
        info = _info(0, pc=pc)
        hit, _ = cache.access(info)
        if not hit:
            cache.fill(_info(0, pc=pc))
    assert policy._predict_friendly(_info(0, pc=pc))


def test_prefetch_and_demand_learn_independently():
    _, policy = _cache()
    sig_d = policy._signature(0x400, False)
    sig_p = policy._signature(0x400, True)
    assert sig_d != sig_p
    policy._train(0x400, was_prefetch=True, opt_hit=False)
    assert policy._predictor.get(sig_p, FRIENDLY_THRESHOLD) < FRIENDLY_THRESHOLD
    assert policy._predictor.get(sig_d, FRIENDLY_THRESHOLD) == FRIENDLY_THRESHOLD


def test_writeback_fill_is_averse_and_untracked():
    cache, policy = _cache(ways=2, sets=4)
    info = _info(0, type_=WRITEBACK)
    cache.fill(info, dirty=True)
    way = cache._tag_maps[0][0]
    assert policy._rrpv[0][way] == RRPV_MAX


def test_never_bypasses():
    _, policy = _cache()
    assert policy.should_bypass(_info(0)) is False
    assert policy.should_bypass(_info(0, type_=PREFETCH)) is False
