"""Integration tests for the L1 -> L2 -> LLC -> DRAM walk."""

import pytest

from repro.sim.cache import Cache
from repro.sim.camat import CAMATMonitor
from repro.sim.core_model import CoreConfig
from repro.sim.dram import DRAMModel
from repro.sim.hierarchy import CoreHierarchy
from repro.sim.prefetch.base import NullPrefetcher
from repro.sim.prefetch.next_line import NextLinePrefetcher
from repro.sim.replacement.base import ReplacementPolicy
from repro.traces.trace import MemoryAccess


def _build(l1_pf=None, l2_pf=None, llc_policy=None, ways=2, sets=8):
    l1 = Cache("l1", 64 * 2 * 4, 2, latency=2.0, mshr_entries=8)
    l2 = Cache("l2", 64 * 4 * 8, 4, latency=6.0, mshr_entries=16)
    llc = Cache(
        "llc",
        64 * ways * sets,
        ways,
        latency=20.0,
        mshr_entries=32,
        policy=llc_policy,
        track_mgmt_stats=True,
    )
    dram = DRAMModel()
    camat = CAMATMonitor(num_cores=1, t_mem=100.0)
    core = CoreHierarchy(
        core_id=0,
        l1=l1,
        l2=l2,
        llc=llc,
        dram=dram,
        camat=camat,
        l1_prefetcher=l1_pf or NullPrefetcher(),
        l2_prefetcher=l2_pf or NullPrefetcher(),
        core_config=CoreConfig(width=1),
    )
    return core


def test_cold_miss_fills_every_level():
    core = _build()
    latency = core.execute(MemoryAccess(0x400, 0x10000))
    assert latency > 20.0  # went to DRAM
    assert core.l1.probe(0x10000 >> 6)
    assert core.l2.probe(0x10000 >> 6)
    assert core.llc.probe(0x10000 >> 6)


def test_l1_hit_after_fill_is_cheap():
    core = _build()
    core.execute(MemoryAccess(0x400, 0x10000))
    latency = core.execute(MemoryAccess(0x400, 0x10000))
    assert latency == core.l1.latency


def test_l2_hit_path_latency():
    core = _build()
    core.execute(MemoryAccess(0x400, 0x10000))
    # Evict from tiny L1 with conflicting fills (same L1 set).
    for i in range(1, 4):
        core.execute(MemoryAccess(0x400, 0x10000 + i * 64 * 4))
    if not core.l1.probe(0x10000 >> 6):
        latency = core.execute(MemoryAccess(0x400, 0x10000))
        assert latency == pytest.approx(core.l1.latency + core.l2.latency)


def test_llc_demand_stats_counted():
    core = _build()
    core.execute(MemoryAccess(0x400, 0x20000))
    assert core.llc.stats.demand_misses == 1
    assert core.llc.stats.demand_hits == 0


def test_camat_records_only_llc_level_accesses():
    core = _build()
    core.execute(MemoryAccess(0x400, 0x30000))  # LLC miss -> recorded
    core.execute(MemoryAccess(0x400, 0x30000))  # L1 hit -> not recorded
    assert core.camat.cores[0].total_accesses == 1


def test_dirty_eviction_propagates_to_llc():
    core = _build()
    base = 0x40000
    core.execute(MemoryAccess(0x400, base, is_write=True))
    # Force the dirty block out of L1 AND L2 with conflicting same-set fills.
    conflicts = [base + i * 64 * 8 for i in range(1, 6)]
    for addr in conflicts:
        core.execute(MemoryAccess(0x400, addr))
    wb_hits = core.llc.stats.writeback_hits + core.llc.stats.writeback_misses
    if not core.l2.probe(base >> 6):
        assert wb_hits >= 1


def test_prefetch_fills_are_tagged_at_llc():
    core = _build(l1_pf=NextLinePrefetcher(degree=1))
    core.execute(MemoryAccess(0x400, 0x50000))
    assert core.llc.mgmt.prefetch_fills >= 1
    # The prefetched next line is resident above too (L1-level prefetch).
    assert core.l1.probe((0x50000 >> 6) + 1)


def test_prefetcher_gets_usefulness_credit():
    pf = NextLinePrefetcher(degree=1)
    core = _build(l1_pf=pf)
    core.execute(MemoryAccess(0x400, 0x60000))
    core.execute(MemoryAccess(0x404, 0x60040))  # demand hit on prefetched line
    assert pf.stats.useful == 1


def test_llc_bypass_policy_keeps_block_out_of_llc_only():
    class AlwaysBypass(ReplacementPolicy):
        name = "always-bypass"

        def should_bypass(self, info):
            return True

        def find_victim(self, info, blocks):
            return 0

    core = _build(llc_policy=AlwaysBypass())
    core.execute(MemoryAccess(0x400, 0x70000))
    assert not core.llc.probe(0x70000 >> 6)
    assert core.l1.probe(0x70000 >> 6)  # data still reached the core
    assert core.l2.probe(0x70000 >> 6)
    assert core.llc.mgmt.bypasses == 1


def test_store_does_not_stall_commit():
    core = _build()
    core.execute(MemoryAccess(0x400, 0x80000, is_write=True))
    assert core.core.outstanding_loads == 0


def test_load_registers_outstanding_miss():
    core = _build()
    core.execute(MemoryAccess(0x400, 0x90000))
    assert core.core.outstanding_loads == 1


def test_mshr_merge_on_overlapping_miss():
    core = _build()
    # Two loads to the same block with tiny gap: the second is satisfied
    # without a new DRAM read (merge or L2 hit, never a duplicate fetch).
    core.execute(MemoryAccess(0x400, 0xA0000, False, 0))
    dram_reads_after_first = core.dram.reads
    core.l1.invalidate(0xA0000 >> 6)  # force L1 lookup miss while in flight
    core.execute(MemoryAccess(0x404, 0xA0000, False, 0))
    assert core.dram.reads == dram_reads_after_first  # merged, no new DRAM read
