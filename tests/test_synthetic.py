"""Unit tests for the primitive synthetic trace generators."""

import itertools

from repro.sim.address import BLOCK_SIZE
from repro.traces.synthetic import (
    hot_plus_scan,
    interleave,
    make_trace,
    multi_stream,
    phased,
    pointer_chase,
    random_region,
    stream,
    strided,
    working_set_loop,
)


def _take(gen, n):
    return list(itertools.islice(gen, n))


def test_stream_is_sequential():
    recs = _take(stream(0, 0x1000), 10)
    addrs = [r.address for r in recs]
    assert addrs == [0x1000 + i * BLOCK_SIZE for i in range(10)]


def test_stream_write_every():
    recs = _take(stream(0, 0, write_every=3), 9)
    writes = [r.is_write for r in recs]
    assert writes == [False, False, True] * 3


def test_stream_deterministic_per_seed():
    a = _take(stream(0, 0, seed=5), 20)
    b = _take(stream(0, 0, seed=5), 20)
    assert a == b


def test_strided_wraps_region():
    recs = _take(strided(0, 0, stride=BLOCK_SIZE, length_blocks=4), 8)
    addrs = [r.address for r in recs]
    assert addrs[:4] == addrs[4:]  # second sweep repeats the first


def test_working_set_loop_reuses_blocks():
    recs = _take(working_set_loop(0, 0, ws_blocks=8), 16)
    blocks = {r.address >> 6 for r in recs}
    assert len(blocks) == 8


def test_pointer_chase_covers_permutation_cycle():
    ws = 16
    recs = _take(pointer_chase(0, 0, ws_blocks=ws, seed=1), ws * 2)
    blocks = [r.address >> 6 for r in recs]
    # A permutation cycle may decompose, but the walk must revisit its start.
    assert blocks[0] in blocks[1:]


def test_pointer_chase_deterministic():
    a = _take(pointer_chase(0, 0, ws_blocks=32, seed=9), 50)
    b = _take(pointer_chase(0, 0, ws_blocks=32, seed=9), 50)
    assert a == b


def test_random_region_hot_fraction():
    recs = _take(
        random_region(
            0, 0, region_blocks=10_000, hot_blocks=10, hot_fraction=0.9, seed=2
        ),
        500,
    )
    hot = sum(1 for r in recs if (r.address >> 6) < 10)
    assert hot > 350  # ~90% expected


def test_hot_plus_scan_scan_blocks_are_single_use():
    recs = _take(hot_plus_scan(0, 0, hot_blocks=4, hot_fraction=0.5, seed=3), 400)
    scan_blocks = [r.address >> 6 for r in recs if (r.address >> 6) >= 16]
    assert len(scan_blocks) == len(set(scan_blocks))  # never repeated


def test_multi_stream_uses_distinct_pcs():
    recs = _take(multi_stream(0, 0, num_streams=3, seed=4), 100)
    pcs = {r.pc for r in recs}
    assert len(pcs) == 3


def test_multi_stream_write_streams():
    recs = _take(multi_stream(0, 0, num_streams=2, write_streams=1, seed=4), 200)
    assert any(r.is_write for r in recs)
    assert any(not r.is_write for r in recs)


def test_interleave_honors_weights():
    a = stream(0, 0)
    b = stream(1, 1 << 30)
    recs = _take(interleave([a, b], [0.9, 0.1], seed=5), 1000)
    from_a = sum(1 for r in recs if r.address < (1 << 30))
    assert from_a > 800


def test_interleave_requires_matching_weights():
    import pytest

    with pytest.raises(ValueError):
        next(interleave([stream(0, 0)], [0.5, 0.5]))


def test_phased_cycles_segments():
    a = stream(0, 0)
    b = stream(1, 1 << 30)
    recs = _take(phased([(a, 3), (b, 2)]), 10)
    regions = [r.address >= (1 << 30) for r in recs]
    assert regions == [False] * 3 + [True] * 2 + [False] * 3 + [True] * 2


def test_make_trace_finite_and_replayable():
    trace = make_trace("t", lambda: stream(0, 0), 25)
    assert len(list(trace)) == 25
    assert list(trace) == list(trace)


def test_gaps_within_configured_range():
    recs = _take(stream(0, 0, gap=(2, 5)), 100)
    assert all(2 <= r.gap <= 5 for r in recs)
