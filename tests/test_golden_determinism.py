"""Golden determinism guard for the simulator hot path.

The hot-path overhaul (inlined access walk, heap scheduler, fused
Q-table reads, specialized LRU fills) is only legal because it is
*behavior-preserving*: every optimization must leave the simulated
machine bit-identical — same hit/miss sequences, same float
accumulation order, same RNG draws.  This test pins that property by
running fixed-seed workloads and comparing every statistic the
simulator reports (floats via ``repr``, so equality is byte-exact)
against committed golden values.

If a change *intentionally* alters simulated behavior, regenerate the
goldens and explain the diff in the commit message::

    PYTHONPATH=src python tests/test_golden_determinism.py --regenerate

An unexplained diff here means a "pure performance" change was not
actually behavior-preserving.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cluster.jobs import ClusterJob
from repro.core.chrome import ChromePolicy
from repro.serve.jobs import ServeJob
from repro.sim.multicore import MultiCoreSystem, SystemConfig
from repro.sim.replacement.lru import LRUPolicy
from repro.traces.mixes import heterogeneous_mix, homogeneous_mix

GOLDEN_PATH = Path(__file__).parent / "golden" / "determinism.json"
SERVE_GOLDEN_PATH = Path(__file__).parent / "golden" / "serve_determinism.json"
SERVE_FAULTS_GOLDEN_PATH = (
    Path(__file__).parent / "golden" / "serve_faults_determinism.json"
)
CLUSTER_GOLDEN_PATH = (
    Path(__file__).parent / "golden" / "cluster_determinism.json"
)
OPS_GOLDEN_PATH = Path(__file__).parent / "golden" / "ops_determinism.json"
WORKLOADS_GOLDEN_PATH = (
    Path(__file__).parent / "golden" / "workloads_determinism.json"
)

# Small machine (1/64 of Table V) so the whole suite runs in seconds;
# the capacity ratios the policies react to are preserved.
SCALE = 1 / 64


def _cache_stats(stats) -> dict:
    return {
        "name": stats.name,
        "demand_hits": stats.demand_hits,
        "demand_misses": stats.demand_misses,
        "prefetch_hits": stats.prefetch_hits,
        "prefetch_misses": stats.prefetch_misses,
        "writeback_hits": stats.writeback_hits,
        "writeback_misses": stats.writeback_misses,
        "evictions": stats.evictions,
        "writebacks_out": stats.writebacks_out,
    }


def _system_stats(system: MultiCoreSystem, result) -> dict:
    """Every stat the simulator reports, floats repr'd for exactness."""
    mgmt = result.llc_mgmt
    out = {
        "policy": result.policy_name,
        "ipcs": [repr(c.ipc) for c in result.cores],
        "instructions": [c.instructions for c in result.cores],
        "cycles": [repr(c.cycles) for c in result.cores],
        "llc": _cache_stats(result.llc_stats),
        "l1": [_cache_stats(h.l1.stats) for h in system.cores],
        "l2": [_cache_stats(h.l2.stats) for h in system.cores],
        "mgmt": {
            "fills": mgmt.fills,
            "prefetch_fills": mgmt.prefetch_fills,
            "prefetch_fill_hits": mgmt.prefetch_fill_hits,
            "bypasses": mgmt.bypasses,
            "incoming_blocks": mgmt.incoming_blocks,
            "evicted_unused": mgmt.evicted_unused,
            "evicted_used": mgmt.evicted_used,
            "evicted_unused_prefetch": mgmt.evicted_unused_prefetch,
            "unused_requested_again": mgmt.unused_requested_again,
            "bypass_mistakes": mgmt.bypass_mistakes,
        },
        "camat": {k: repr(v) for k, v in sorted(result.camat_summary.items())},
        "prefetcher_accuracy": repr(result.prefetcher_accuracy),
        "prefetch_drops": [h.prefetch_drops for h in system.cores],
        "prefetch_filtered": [h.prefetch_filtered for h in system.cores],
        "mshr": {
            "llc_merges": system.llc.mshr.merges,
            "llc_stalls": system.llc.mshr.stalls,
            "l1_merges": [h.l1.mshr.merges for h in system.cores],
            "l2_merges": [h.l2.mshr.merges for h in system.cores],
        },
    }
    if "policy_telemetry" in result.extra:
        out["telemetry"] = {
            k: repr(v) for k, v in sorted(result.extra["policy_telemetry"].items())
        }
    return out


def _run_case(policy_factory, traces, cores, warmup=0, cap=None) -> dict:
    system = MultiCoreSystem(
        SystemConfig(num_cores=cores, scale=SCALE), llc_policy=policy_factory()
    )
    result = system.run(traces, warmup_accesses=warmup, max_accesses_per_core=cap)
    return _system_stats(system, result)


def compute_golden() -> dict:
    """The four pinned workloads (shared by the test and --regenerate)."""
    mix2 = lambda: heterogeneous_mix(
        ["mcf06", "libquantum06"], 1500, seed=7, scale=SCALE
    )
    mix16 = lambda: homogeneous_mix("mcf06", 16, 250, seed=3, scale=SCALE)
    return {
        "lru_2core": _run_case(LRUPolicy, mix2(), 2, warmup=400),
        "chrome_2core": _run_case(ChromePolicy, mix2(), 2, warmup=400),
        "lru_16core": _run_case(LRUPolicy, mix16(), 16),
        "chrome_16core_capped": _run_case(
            ChromePolicy, mix16(), 16, warmup=60, cap=200
        ),
    }


def _serve_stats(metrics) -> dict:
    """Every stat a serve run reports, floats repr'd for exactness."""
    return {
        "policy": metrics.policy,
        "workload": metrics.workload,
        "requests": metrics.requests,
        "hits": metrics.hits,
        "bytes_requested": metrics.bytes_requested,
        "bytes_hit": metrics.bytes_hit,
        "backend_fetches": metrics.backend_fetches,
        "backend_bytes": metrics.backend_bytes,
        "admitted": metrics.admitted,
        "admitted_bytes": metrics.admitted_bytes,
        "bypassed": metrics.bypassed,
        "bypassed_bytes": metrics.bypassed_bytes,
        "evictions": metrics.evictions,
        "evicted_bytes": metrics.evicted_bytes,
        "peak_outstanding": metrics.peak_outstanding,
        "mean_latency_ms": repr(metrics.mean_latency_ms),
        "p50_latency_ms": repr(metrics.p50_latency_ms),
        "p99_latency_ms": repr(metrics.p99_latency_ms),
        "per_tenant": {
            str(t): [tm.requests, tm.hits, tm.bytes_requested, tm.bytes_hit]
            for t, tm in sorted(metrics.per_tenant.items())
        },
        "curve": [[n, repr(ohr), repr(bhr)] for n, ohr, bhr in metrics.curve],
        "telemetry": {k: repr(v) for k, v in sorted(metrics.telemetry.items())},
    }


def _serve_case(workload: str, policy: str) -> dict:
    job = ServeJob(
        workload=workload,
        policy=policy,
        num_requests=1200,
        warmup_requests=200,
        capacity_bytes=2 << 20,
        num_segments=64,
        num_clients=5,
        seed=17,
        checkpoint_every=400,
    )
    return _serve_stats(job.execute())


def compute_serve_golden() -> dict:
    """Fixed-seed serve runs pinning the serving layer's behavior.

    Covers both learned and classic policies, the multi-tenant
    accounting, and the hit-ratio curve — through the *concurrent*
    driver (num_clients=5), so the golden also pins the sequenced-
    asyncio path.
    """
    return {
        "lru_zipf_scan": _serve_case("zipf_scan", "lru"),
        "chrome_zipf_scan": _serve_case("zipf_scan", "chrome"),
        "chrome_multitenant": _serve_case("multitenant", "chrome"),
        "s3fifo_phases": _serve_case("phases", "s3fifo"),
        "chrome_proxy_burst": _serve_case("proxy_burst", "chrome"),
        "gdsf_retrieval": _serve_case("retrieval", "gdsf"),
        "lru_storage_tier": _serve_case("storage_tier", "lru"),
    }


#: generators pinned request-by-request (the serve cases above pin
#: end-to-end store behavior; these pin the raw streams themselves)
_WORKLOAD_GOLDEN_NAMES = ("proxy_burst", "retrieval", "storage_tier")
_WORKLOAD_GOLDEN_SEED = 11
_WORKLOAD_GOLDEN_REQUESTS = 4000
_WORKLOAD_GOLDEN_PREFIX = 64


def compute_workloads_golden() -> dict:
    """Request-stream pins for the atlas generators.

    Each case records the first N ``[key, size, tenant, is_refresh]``
    tuples verbatim plus whole-stream aggregates (length, distinct
    keys, total bytes, an order-sensitive checksum), so any change to a
    generator's RNG discipline — not just its first few draws — trips
    the pin.
    """
    from repro.serve.workloads import build_workload

    out = {}
    for name in _WORKLOAD_GOLDEN_NAMES:
        stream = build_workload(
            name, _WORKLOAD_GOLDEN_REQUESTS, seed=_WORKLOAD_GOLDEN_SEED
        )
        checksum = 0
        for position, r in enumerate(stream):
            checksum = (
                checksum * 1000003 + r.key * 31 + r.size * 7 + position
            ) % (1 << 61)
        out[name] = {
            "prefix": [
                [r.key, r.size, r.tenant, r.is_refresh]
                for r in stream[:_WORKLOAD_GOLDEN_PREFIX]
            ],
            "requests": len(stream),
            "distinct_keys": len({r.key for r in stream}),
            "total_bytes": sum(r.size for r in stream),
            "checksum": checksum,
        }
    return out


def _serve_fault_stats(metrics) -> dict:
    """The serve stats plus every degradation counter the chaos path adds."""
    out = _serve_stats(metrics)
    out.update(
        {
            "origin_served": metrics.origin_served,
            "shed": metrics.shed,
            "stale_served": metrics.stale_served,
            "errors": metrics.errors,
            "retries": metrics.retries,
            "timeouts": metrics.timeouts,
            "breaker_opens": metrics.breaker_opens,
            "breaker_denied": metrics.breaker_denied,
            "degraded_requests": metrics.degraded_requests,
            "degraded_p99_latency_ms": repr(metrics.degraded_p99_latency_ms),
        }
    )
    return out


#: pinned chaos fault model (literal, independent of experiment tuning:
#: the golden pins *code* behavior, not serve_faults parameter choices)
_GOLDEN_FAULTS = (
    ("seed", 1),
    ("error_rate", 0.01),
    ("spike_rate", 0.02),
    ("spike_multiplier", 8.0),
    ("burst_every_ms", 175.0),
    ("burst_duration_ms", 25.0),
    ("outage_every_ms", 230.0),
    ("outage_duration_ms", 60.0),
    ("recovery_ramp_ms", 30.0),
    ("recovery_multiplier", 4.0),
)

_GOLDEN_BROWNOUT_FAULTS = _GOLDEN_FAULTS + (
    ("brownout_tenant", 1),
    ("brownout_every_ms", 200.0),
    ("brownout_duration_ms", 50.0),
)

_GOLDEN_RESILIENCE = (
    ("timeout_ms", 30.0),
    ("shed_outstanding", 128),
    ("breaker_open_ms", 6.0),
)


def _serve_faults_case(
    workload: str,
    policy: str,
    fault_params: tuple,
    resilience_params: tuple,
) -> dict:
    job = ServeJob(
        workload=workload,
        policy=policy,
        num_requests=1200,
        warmup_requests=200,
        capacity_bytes=2 << 20,
        num_segments=64,
        num_clients=5,
        seed=17,
        checkpoint_every=400,
        fault_params=fault_params,
        resilience_params=resilience_params,
    )
    return _serve_fault_stats(job.execute())


def compute_serve_faults_golden() -> dict:
    """Fixed-seed chaos runs pinning fault injection + degradation.

    Covers the naive control (retries/breaker/stale all off), the full
    resilient pipeline, and a per-tenant brownout with stale serving —
    again through the concurrent driver (num_clients=5), so the golden
    pins that chaos decisions survive the sequenced-asyncio path.
    """
    return {
        "lru_naive_outages": _serve_faults_case(
            "zipf_scan", "lru", _GOLDEN_FAULTS, (("preset", "none"),)
        ),
        "chrome_resilient_outages": _serve_faults_case(
            "zipf_scan", "chrome", _GOLDEN_FAULTS, _GOLDEN_RESILIENCE
        ),
        "lru_resilient_brownout": _serve_faults_case(
            "multitenant", "lru", _GOLDEN_BROWNOUT_FAULTS, _GOLDEN_RESILIENCE
        ),
    }


#: pinned shard-kill model: one outage window taking a shard down for a
#: quarter of the 1400-request (700 virtual ms) golden runs
_GOLDEN_KILL_FAULTS = (
    ("seed", 3),
    ("outage_every_ms", 700.0),
    ("outage_duration_ms", 175.0),
)


def _cluster_stats(metrics) -> dict:
    """Fleet + ring accounting, floats repr'd for exactness."""
    return {
        "fleet": _serve_fault_stats(metrics.fleet),
        "per_shard": [_serve_fault_stats(m) for m in metrics.per_shard],
        "routed": list(metrics.routed),
        "reroutes": metrics.reroutes,
        "unroutable": metrics.unroutable,
        "ring_changes": metrics.ring_changes,
        "federations": metrics.federations,
        "hot_windows": metrics.hot_windows,
        "hot_promotions": metrics.hot_promotions,
        "hot_splits": metrics.hot_splits,
        "hot_evictions": metrics.hot_evictions,
    }


def _cluster_case(policy: str, **overrides) -> dict:
    spec = dict(
        workload="zipf_scan",
        policy=policy,
        num_requests=1200,
        warmup_requests=200,
        capacity_bytes=4 << 20,
        num_segments=64,
        num_shards=4,
        replication=2,
        num_clients=5,
        seed=17,
        checkpoint_every=400,
        federate_every=400,
        hotkey_window=256,
    )
    spec.update(overrides)
    return _cluster_stats(ClusterJob(**spec).execute())


def compute_cluster_golden() -> dict:
    """Fixed-seed fleet runs pinning the cluster layer's behavior.

    The deterministic-failover guarantee is the headline pin:
    ``chrome_federated_killshard`` kills shard 2 mid-run via FaultConfig
    outage windows and the committed stats — fleet and per-shard — must
    reproduce byte-identically (at *any* client count; test_cluster.py
    pins 1 vs 64 equality, this golden pins the actual values).  The
    LRU case adds per-shard origin chaos on top of the kill, exercising
    the serve fault/resilience pipeline inside a routed fleet.
    """
    return {
        "chrome_federated": _cluster_case("chrome"),
        "chrome_federated_killshard": _cluster_case(
            "chrome", kill_shard=2, kill_fault_params=_GOLDEN_KILL_FAULTS
        ),
        "lru_faults_killshard": _cluster_case(
            "lru",
            federate_every=0,
            kill_shard=1,
            kill_fault_params=_GOLDEN_KILL_FAULTS,
            fault_params=_GOLDEN_FAULTS,
        ),
    }


def _reprd(value):
    """Recursively repr floats so golden equality is byte-exact."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return [_reprd(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _reprd(v) for k, v in value.items()}
    return value


def _ops_stats(result, fleet: bool) -> dict:
    """Everything an ops-managed run decides, floats repr'd.

    The windows and the event log are pinned whole — every promote /
    trip / rollback / snapshot transition, at its exact window, seq and
    virtual time — not just the final counters.
    """
    return {
        "champion": (
            _cluster_stats(result.champion) if fleet
            else _serve_stats(result.champion)
        ),
        "challenger": (
            _serve_stats(result.challenger)
            if result.challenger is not None
            else None
        ),
        "windows": _reprd(result.windows),
        "events": _reprd(result.events),
        "counters": {
            "snapshots": result.snapshots,
            "promotions": result.promotions,
            "trips": result.trips,
            "rollbacks": result.rollbacks,
            "degradations": result.degradations,
        },
    }


#: the guarded-degradation ops spec (mirrors the validated recovery
#: scenario the ops tests and bench use)
_GOLDEN_OPS_GUARD = (
    ("window", 200),
    ("min_byte_hit_ewma", 0.05),
    ("trip_after", 2),
    ("warmup_windows", 2),
    ("snapshot_every", 2),
    ("degrade_at_window", 6),
)

#: the fleet variant runs the same stream over 3 shard-sized caches
#: (1/3 capacity each), so its healthy byte-hit EWMA sits lower —
#: the floor must separate "small shards" from "sabotaged deploy"
_GOLDEN_OPS_GUARD_FLEET = tuple(
    (k, 0.02 if k == "min_byte_hit_ewma" else v) for k, v in _GOLDEN_OPS_GUARD
)


def _ops_case(**overrides) -> dict:
    from repro.ops.jobs import OpsJob

    spec = dict(
        workload="zipf_scan",
        policy="chrome",
        num_requests=1200,
        warmup_requests=200,
        capacity_bytes=2 << 20,
        num_segments=64,
        num_clients=5,
        seed=17,
        checkpoint_every=400,
    )
    spec.update(overrides)
    job = OpsJob(**spec)
    return _ops_stats(job.execute(), fleet=job.num_shards > 0)


def compute_ops_golden() -> dict:
    """Fixed-seed ops runs pinning the live-operations control loop.

    ``shadow_chrome_zipf_scan`` runs the exact serve-golden
    ``chrome_zipf_scan`` spec with a shadow LRU challenger attached —
    its champion block must stay byte-identical to the committed serve
    golden (the zero-impact contract, cross-asserted by test).  The
    guarded cases pin a whole degradation story: bad deploy at window
    6, guardrail trip, rollback to a ring snapshot, recovery — single
    service and 3-shard fleet.
    """
    return {
        "shadow_chrome_zipf_scan": _ops_case(
            ops_params=(("window", 200), ("challenger_policy", "lru")),
        ),
        "guarded_degrade_phases": _ops_case(
            workload="phases",
            workload_params=(("num_phases", 8),),
            num_requests=4000,
            checkpoint_every=0,
            ops_params=_GOLDEN_OPS_GUARD,
        ),
        "cluster_guarded_degrade": _ops_case(
            workload="phases",
            workload_params=(("num_phases", 8),),
            num_requests=4000,
            checkpoint_every=0,
            ops_params=_GOLDEN_OPS_GUARD_FLEET,
            num_shards=3,
            federate_every=500,
        ),
    }


@pytest.fixture(scope="module")
def computed() -> dict:
    return compute_golden()


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.exists(), (
        f"missing golden file {GOLDEN_PATH}; regenerate with "
        "`PYTHONPATH=src python tests/test_golden_determinism.py --regenerate`"
    )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize(
    "case", ["lru_2core", "chrome_2core", "lru_16core", "chrome_16core_capped"]
)
def test_stats_bit_identical(case: str, computed: dict, golden: dict) -> None:
    assert computed[case] == golden[case], (
        f"{case}: simulated behavior diverged from the committed golden. "
        "If this change is intentionally behavior-altering, regenerate "
        "with `PYTHONPATH=src python tests/test_golden_determinism.py "
        "--regenerate` and justify the diff; a pure perf change must "
        "never trip this."
    )


def test_repeated_run_is_deterministic(computed: dict) -> None:
    """Two in-process runs agree (no hidden global/RNG leakage)."""
    again = compute_golden()
    assert again == computed


@pytest.fixture(scope="module")
def serve_computed() -> dict:
    return compute_serve_golden()


@pytest.fixture(scope="module")
def serve_golden() -> dict:
    assert SERVE_GOLDEN_PATH.exists(), (
        f"missing golden file {SERVE_GOLDEN_PATH}; regenerate with "
        "`PYTHONPATH=src python tests/test_golden_determinism.py --regenerate`"
    )
    return json.loads(SERVE_GOLDEN_PATH.read_text())


@pytest.mark.parametrize(
    "case",
    [
        "lru_zipf_scan",
        "chrome_zipf_scan",
        "chrome_multitenant",
        "s3fifo_phases",
        "chrome_proxy_burst",
        "gdsf_retrieval",
        "lru_storage_tier",
    ],
)
def test_serve_stats_bit_identical(
    case: str, serve_computed: dict, serve_golden: dict
) -> None:
    assert serve_computed[case] == serve_golden[case], (
        f"{case}: serve behavior diverged from the committed golden "
        "(this is also what `--jobs 1` vs `--jobs N` identity rests "
        "on).  If the change is intentionally behavior-altering, "
        "regenerate with `PYTHONPATH=src python "
        "tests/test_golden_determinism.py --regenerate` and justify "
        "the diff."
    )


def test_serve_repeated_run_is_deterministic(serve_computed: dict) -> None:
    again = compute_serve_golden()
    assert again == serve_computed


@pytest.fixture(scope="module")
def serve_faults_computed() -> dict:
    return compute_serve_faults_golden()


@pytest.fixture(scope="module")
def serve_faults_golden() -> dict:
    assert SERVE_FAULTS_GOLDEN_PATH.exists(), (
        f"missing golden file {SERVE_FAULTS_GOLDEN_PATH}; regenerate with "
        "`PYTHONPATH=src python tests/test_golden_determinism.py --regenerate`"
    )
    return json.loads(SERVE_FAULTS_GOLDEN_PATH.read_text())


@pytest.mark.parametrize(
    "case",
    [
        "lru_naive_outages",
        "chrome_resilient_outages",
        "lru_resilient_brownout",
    ],
)
def test_serve_faults_stats_bit_identical(
    case: str, serve_faults_computed: dict, serve_faults_golden: dict
) -> None:
    assert serve_faults_computed[case] == serve_faults_golden[case], (
        f"{case}: chaos-path serve behavior diverged from the committed "
        "golden (fault windows, retry totals and breaker trips are all "
        "deterministic by construction).  If the change is intentionally "
        "behavior-altering, regenerate with `PYTHONPATH=src python "
        "tests/test_golden_determinism.py --regenerate` and justify the "
        "diff."
    )


def test_serve_faults_repeated_run_is_deterministic(
    serve_faults_computed: dict,
) -> None:
    again = compute_serve_faults_golden()
    assert again == serve_faults_computed


@pytest.fixture(scope="module")
def cluster_computed() -> dict:
    return compute_cluster_golden()


@pytest.fixture(scope="module")
def cluster_golden() -> dict:
    assert CLUSTER_GOLDEN_PATH.exists(), (
        f"missing golden file {CLUSTER_GOLDEN_PATH}; regenerate with "
        "`PYTHONPATH=src python tests/test_golden_determinism.py --regenerate`"
    )
    return json.loads(CLUSTER_GOLDEN_PATH.read_text())


@pytest.mark.parametrize(
    "case",
    [
        "chrome_federated",
        "chrome_federated_killshard",
        "lru_faults_killshard",
    ],
)
def test_cluster_stats_bit_identical(
    case: str, cluster_computed: dict, cluster_golden: dict
) -> None:
    assert cluster_computed[case] == cluster_golden[case], (
        f"{case}: cluster behavior diverged from the committed golden "
        "(ring routing, shard-kill failover, hot-key splitting and "
        "Q-table federation are all deterministic by construction).  "
        "If the change is intentionally behavior-altering, regenerate "
        "with `PYTHONPATH=src python tests/test_golden_determinism.py "
        "--regenerate` and justify the diff."
    )


def test_cluster_repeated_run_is_deterministic(cluster_computed: dict) -> None:
    again = compute_cluster_golden()
    assert again == cluster_computed


@pytest.fixture(scope="module")
def ops_computed() -> dict:
    return compute_ops_golden()


@pytest.fixture(scope="module")
def ops_golden() -> dict:
    assert OPS_GOLDEN_PATH.exists(), (
        f"missing golden file {OPS_GOLDEN_PATH}; regenerate with "
        "`PYTHONPATH=src python tests/test_golden_determinism.py --regenerate`"
    )
    return json.loads(OPS_GOLDEN_PATH.read_text())


@pytest.mark.parametrize(
    "case",
    [
        "shadow_chrome_zipf_scan",
        "guarded_degrade_phases",
        "cluster_guarded_degrade",
    ],
)
def test_ops_stats_bit_identical(
    case: str, ops_computed: dict, ops_golden: dict
) -> None:
    assert ops_computed[case] == ops_golden[case], (
        f"{case}: live-operations behavior diverged from the committed "
        "golden (window rows, promote/trip/rollback events and their "
        "virtual times are all deterministic by construction).  If the "
        "change is intentionally behavior-altering, regenerate with "
        "`PYTHONPATH=src python tests/test_golden_determinism.py "
        "--regenerate` and justify the diff."
    )


def test_ops_shadow_champion_matches_serve_golden(
    ops_computed: dict, serve_golden: dict
) -> None:
    """The zero-impact contract, pinned against the committed file: a
    champion with a shadow challenger attached serves byte-identically
    to the same spec with no ops layer at all."""
    assert (
        ops_computed["shadow_chrome_zipf_scan"]["champion"]
        == serve_golden["chrome_zipf_scan"]
    )


def test_ops_golden_runs_degrade_trip_and_rollback(ops_computed: dict) -> None:
    """The guarded cases genuinely exercise the whole state machine."""
    for case in ("guarded_degrade_phases", "cluster_guarded_degrade"):
        counters = ops_computed[case]["counters"]
        assert counters["degradations"] == 1, case
        assert counters["trips"] >= 1, case
        assert counters["rollbacks"] >= 1, case
        kinds = [e["kind"] for e in ops_computed[case]["events"]]
        assert kinds.index("trip") > kinds.index("degrade"), case


def test_ops_repeated_run_is_deterministic(ops_computed: dict) -> None:
    again = compute_ops_golden()
    assert again == ops_computed


@pytest.fixture(scope="module")
def workloads_computed() -> dict:
    return compute_workloads_golden()


@pytest.fixture(scope="module")
def workloads_golden() -> dict:
    assert WORKLOADS_GOLDEN_PATH.exists(), (
        f"missing golden file {WORKLOADS_GOLDEN_PATH}; regenerate with "
        "`PYTHONPATH=src python tests/test_golden_determinism.py --regenerate`"
    )
    return json.loads(WORKLOADS_GOLDEN_PATH.read_text())


@pytest.mark.parametrize("case", list(_WORKLOAD_GOLDEN_NAMES))
def test_workload_stream_bit_identical(
    case: str, workloads_computed: dict, workloads_golden: dict
) -> None:
    assert workloads_computed[case] == workloads_golden[case], (
        f"{case}: the generator's request stream diverged from the "
        "committed golden (first-N tuples and whole-stream checksum).  "
        "If the generator change is intentional, regenerate with "
        "`PYTHONPATH=src python tests/test_golden_determinism.py "
        "--regenerate` and justify the diff — silent stream drift "
        "invalidates every serve result comparison."
    )


def test_workload_streams_repeated_run_deterministic(
    workloads_computed: dict,
) -> None:
    again = compute_workloads_golden()
    assert again == workloads_computed


def main() -> None:  # pragma: no cover - maintenance helper
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--regenerate",
        action="store_true",
        help=f"rewrite {GOLDEN_PATH} from the current code",
    )
    args = parser.parse_args()
    if not args.regenerate:
        parser.error("nothing to do; pass --regenerate (tests run under pytest)")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(compute_golden(), indent=1, sort_keys=True) + "\n"
    )
    print(f"wrote {GOLDEN_PATH}")
    SERVE_GOLDEN_PATH.write_text(
        json.dumps(compute_serve_golden(), indent=1, sort_keys=True) + "\n"
    )
    print(f"wrote {SERVE_GOLDEN_PATH}")
    SERVE_FAULTS_GOLDEN_PATH.write_text(
        json.dumps(compute_serve_faults_golden(), indent=1, sort_keys=True) + "\n"
    )
    print(f"wrote {SERVE_FAULTS_GOLDEN_PATH}")
    CLUSTER_GOLDEN_PATH.write_text(
        json.dumps(compute_cluster_golden(), indent=1, sort_keys=True) + "\n"
    )
    print(f"wrote {CLUSTER_GOLDEN_PATH}")
    OPS_GOLDEN_PATH.write_text(
        json.dumps(compute_ops_golden(), indent=1, sort_keys=True) + "\n"
    )
    print(f"wrote {OPS_GOLDEN_PATH}")
    WORKLOADS_GOLDEN_PATH.write_text(
        json.dumps(compute_workloads_golden(), indent=1, sort_keys=True) + "\n"
    )
    print(f"wrote {WORKLOADS_GOLDEN_PATH}")


if __name__ == "__main__":  # pragma: no cover
    main()
