"""Tests for the experiment runner (scaling, caching, comparisons)."""

import pytest

from repro.experiments.runner import (
    ExperimentScale,
    Runner,
    chrome_with,
    resolve_policy,
)
from repro.sim.replacement.lru import LRUPolicy

FAST = ExperimentScale(
    machine_scale=1 / 64,
    accesses_per_core=400,
    warmup_per_core=100,
    workload_limit=2,
    hetero_mixes=2,
)


def test_scale_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.25")
    monkeypatch.setenv("REPRO_ACCESSES", "123")
    monkeypatch.setenv("REPRO_WORKLOADS", "0")
    scale = ExperimentScale.from_env()
    assert scale.machine_scale == 0.25
    assert scale.accesses_per_core == 123
    assert scale.workload_limit == 0


def test_env_typo_raises_clear_error(monkeypatch):
    monkeypatch.setenv("REPRO_ACCESSES", "24k")
    with pytest.raises(ValueError, match="REPRO_ACCESSES"):
        ExperimentScale.from_env()


def test_env_bad_float_raises_clear_error(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "1/16")
    with pytest.raises(ValueError, match="REPRO_SCALE"):
        ExperimentScale.from_env()


def test_env_rejects_non_positive(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "-0.5")
    with pytest.raises(ValueError, match="REPRO_SCALE"):
        ExperimentScale.from_env()
    monkeypatch.delenv("REPRO_SCALE")
    monkeypatch.setenv("REPRO_ACCESSES", "0")
    with pytest.raises(ValueError, match="REPRO_ACCESSES"):
        ExperimentScale.from_env()


def test_env_zero_workloads_means_all(monkeypatch):
    monkeypatch.setenv("REPRO_WORKLOADS", "0")
    assert ExperimentScale.from_env().workload_limit == 0
    monkeypatch.setenv("REPRO_WORKLOADS", "-1")
    with pytest.raises(ValueError, match="REPRO_WORKLOADS"):
        ExperimentScale.from_env()


def test_env_empty_string_means_unset(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "")
    assert ExperimentScale.from_env().machine_scale == ExperimentScale().machine_scale


def test_with_overrides_ignores_none():
    base = ExperimentScale()
    same = base.with_overrides(machine_scale=None, accesses_per_core=None)
    assert same == base
    changed = base.with_overrides(machine_scale=0.5, workload_limit=None)
    assert changed.machine_scale == 0.5
    assert changed.workload_limit == base.workload_limit


def test_with_overrides_rejects_unknown_field():
    with pytest.raises(TypeError):
        ExperimentScale().with_overrides(not_a_field=3)


def test_limit_workloads_even_spread():
    scale = ExperimentScale(workload_limit=3)
    names = [f"w{i}" for i in range(9)]
    limited = scale.limit_workloads(names)
    assert len(limited) == 3
    assert limited[0] == "w0"
    assert len(set(limited)) == 3


def test_limit_workloads_zero_keeps_all():
    scale = ExperimentScale(workload_limit=0)
    names = ["a", "b", "c"]
    assert scale.limit_workloads(names) == names


def test_resolve_policy_accepts_all_forms():
    assert resolve_policy("lru").name == "lru"
    assert resolve_policy(LRUPolicy).name == "lru"
    instance = LRUPolicy()
    assert resolve_policy(instance) is instance


def test_runner_run_returns_result():
    runner = Runner(FAST)
    _, traces = runner.make_homogeneous("hmmer06", 2)
    result = runner.run("lru", traces)
    assert result.policy_name == "lru"
    assert len(result.cores) == 2


def test_baseline_is_cached():
    runner = Runner(FAST)
    key, traces = runner.make_homogeneous("hmmer06", 2)
    first = runner.baseline(key, traces)
    second = runner.baseline(key, traces)
    assert first is second


def test_compare_normalizes_to_lru():
    runner = Runner(FAST)
    key, traces = runner.make_homogeneous("hmmer06", 2)
    metrics = runner.compare(["lru", "chrome"], key, traces)
    assert metrics["lru"].weighted_speedup == pytest.approx(1.0)
    assert "chrome" in metrics


def test_chrome_with_overrides():
    policy = chrome_with(eq_fifo_size=12, alpha=0.5, features=("pc_sig",))
    assert policy.config.eq_fifo_size == 12
    assert policy.config.alpha == 0.5
    assert policy.config.features == ("pc_sig",)


def test_chrome_with_defaults():
    policy = chrome_with()
    assert policy.config.eq_fifo_size == 28
    assert policy.config.alpha == pytest.approx(0.0498)


def test_heterogeneous_mix_key_distinct_per_names():
    runner = Runner(FAST)
    k1, _ = runner.make_heterogeneous(["hmmer06", "mcf06"])
    k2, _ = runner.make_heterogeneous(["mcf06", "hmmer06"])
    assert k1 != k2
