"""The heap scheduler must be invisible in simulated behavior.

``MultiCoreSystem.run`` selects the next core to advance with a
``(cycle, core_index)`` heap — O(log N) per access — plus a run-ahead
inner loop that keeps executing the earliest core without touching the
heap.  The reference semantics are the obvious O(N) scan: always
advance the lowest-indexed core with the smallest progress clock.

This test rebuilds that naive min-scan scheduler out of public APIs
(``CoreHierarchy.execute`` + ``CAMATMonitor.maybe_close_epoch``) and
checks a 16-core run produces *identical* statistics — every counter,
every float — so scheduler refactors cannot silently reorder shared
LLC/DRAM contention.
"""

from __future__ import annotations

import inspect

from repro.sim.multicore import MultiCoreSystem, SystemConfig
from repro.sim.replacement.lru import LRUPolicy
from repro.traces.mixes import homogeneous_mix

NUM_CORES = 16
SCALE = 1 / 64


def _mix():
    return homogeneous_mix("mcf06", NUM_CORES, 250, seed=11, scale=SCALE)


def _naive_min_scan_run(system: MultiCoreSystem, traces) -> None:
    """Reference scheduler: O(N) min-scan, one record at a time."""
    pending = [list(t) for t in traces]
    positions = [0] * NUM_CORES
    camat = system.camat
    cores = system.cores
    live = [i for i in range(NUM_CORES) if positions[i] < len(pending[i])]
    while live:
        # min() with a (cycle, index) key == lowest index wins ties,
        # exactly the heap's tuple ordering.
        idx = min(live, key=lambda i: (cores[i].core.current_cycle, i))
        hierarchy = cores[idx]
        record = pending[idx][positions[idx]]
        positions[idx] += 1
        hierarchy.execute(record)
        camat.maybe_close_epoch(hierarchy.core.current_cycle)
        if positions[idx] >= len(pending[idx]):
            live.remove(idx)


def _collect(system: MultiCoreSystem) -> dict:
    return {
        "llc": system.llc.stats,
        "mgmt": system.llc.mgmt,
        "l1": [h.l1.stats for h in system.cores],
        "l2": [h.l2.stats for h in system.cores],
        "snapshots": [repr(h.core.snapshot()) for h in system.cores],
        "stalls": [repr(h.core.stall_cycles) for h in system.cores],
        "camat": {k: repr(v) for k, v in sorted(system.camat.summary().items())},
        "dram": (system.dram.reads, system.dram.writes),
        "drops": [h.prefetch_drops for h in system.cores],
        "filtered": [h.prefetch_filtered for h in system.cores],
        "mshr": [
            (h.l1.mshr.merges, h.l1.mshr.stalls, h.l2.mshr.merges, h.l2.mshr.stalls)
            for h in system.cores
        ],
    }


def test_heap_matches_naive_min_scan_16core() -> None:
    cfg = SystemConfig(num_cores=NUM_CORES, scale=SCALE)

    heap_system = MultiCoreSystem(cfg, llc_policy=LRUPolicy())
    heap_system.run(_mix())

    ref_system = MultiCoreSystem(cfg, llc_policy=LRUPolicy())
    _naive_min_scan_run(ref_system, _mix())

    heap_stats = _collect(heap_system)
    ref_stats = _collect(ref_system)
    for key in ref_stats:
        assert heap_stats[key] == ref_stats[key], f"scheduler divergence in {key!r}"


def test_run_loop_uses_heap() -> None:
    """Guard the O(log N) property itself: the run loop must schedule
    with a heap, not a per-access O(num_cores) scan."""
    source = inspect.getsource(MultiCoreSystem.run)
    assert "heappush" in source and "heappop" in source
