"""Unit tests for evaluation metrics."""

import pytest

from repro.experiments.metrics import (
    MixMetrics,
    geometric_mean,
    speedup_percent,
    summarize,
    weighted_speedup,
)
from repro.sim.multicore import CoreResult, SystemResult
from repro.sim.stats import CacheStats, LLCManagementStats


def test_geometric_mean_basic():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)


def test_geometric_mean_empty_is_identity():
    assert geometric_mean([]) == 1.0


def test_geometric_mean_ignores_nonpositive():
    assert geometric_mean([0.0, 4.0]) == pytest.approx(4.0)


def test_weighted_speedup_identity():
    assert weighted_speedup([1.0, 2.0], [1.0, 2.0]) == 1.0


def test_weighted_speedup_mean_of_ratios():
    # Core 0: 2x, core 1: 1x -> 1.5
    assert weighted_speedup([2.0, 2.0], [1.0, 2.0]) == pytest.approx(1.5)


def test_weighted_speedup_mismatched_lengths():
    with pytest.raises(ValueError):
        weighted_speedup([1.0], [1.0, 2.0])


def test_weighted_speedup_skips_dead_baseline_cores():
    assert weighted_speedup([2.0, 5.0], [1.0, 0.0]) == pytest.approx(2.0)


def test_speedup_percent():
    assert speedup_percent(1.092) == pytest.approx(9.2)
    assert speedup_percent(1.0) == 0.0


def _result(name, ipcs, miss_ratio=0.5):
    stats = CacheStats(name="LLC")
    stats.demand_hits = int(100 * (1 - miss_ratio))
    stats.demand_misses = int(100 * miss_ratio)
    mgmt = LLCManagementStats()
    mgmt.on_fill(is_prefetch=True)
    mgmt.on_prefetched_block_hit()
    return SystemResult(
        policy_name=name,
        cores=[CoreResult(instructions=1000, cycles=1000 / i) for i in ipcs],
        llc_stats=stats,
        llc_mgmt=mgmt,
        camat_summary={},
        prefetcher_accuracy=0.5,
        extra={"policy_telemetry": {"upksa": 805.0}},
    )


def test_summarize_builds_mix_metrics():
    scheme = _result("chrome", [1.2, 1.2], miss_ratio=0.4)
    base = _result("lru", [1.0, 1.0], miss_ratio=0.6)
    metrics = summarize(scheme, base)
    assert metrics.scheme == "chrome"
    assert metrics.weighted_speedup == pytest.approx(1.2)
    assert metrics.speedup_percent == pytest.approx(20.0)
    assert metrics.demand_miss_ratio == pytest.approx(0.4)
    assert metrics.ephr == 1.0
    assert metrics.upksa == 805.0


def test_summarize_without_telemetry():
    scheme = _result("lru", [1.0])
    scheme.extra = {}
    metrics = summarize(scheme, _result("lru", [1.0]))
    assert metrics.upksa == 0.0
