"""Unit tests for the MSHR file: merging and occupancy back-pressure."""

import pytest

from repro.sim.mshr import MSHRFile


def test_requires_positive_capacity():
    with pytest.raises(ValueError):
        MSHRFile(0)


def test_allocate_returns_completion():
    mshr = MSHRFile(4)
    assert mshr.allocate(0x10, now=0.0, completion=100.0) == 100.0
    assert mshr.occupancy == 1


def test_second_miss_to_same_block_merges():
    mshr = MSHRFile(4)
    first = mshr.allocate(0x10, now=0.0, completion=100.0)
    merged = mshr.allocate(0x10, now=10.0, completion=200.0)
    assert merged == first
    assert mshr.merges == 1
    assert mshr.occupancy == 1


def test_lookup_finds_inflight_miss():
    mshr = MSHRFile(4)
    mshr.allocate(0x10, now=0.0, completion=100.0)
    assert mshr.lookup(0x10, now=50.0) == 100.0
    assert mshr.lookup(0x99, now=50.0) is None


def test_entries_expire_after_completion():
    mshr = MSHRFile(4)
    mshr.allocate(0x10, now=0.0, completion=100.0)
    assert mshr.lookup(0x10, now=100.0) is None
    assert mshr.occupancy == 0


def test_full_mshr_delays_new_miss():
    mshr = MSHRFile(2)
    mshr.allocate(0x1, now=0.0, completion=50.0)
    mshr.allocate(0x2, now=0.0, completion=80.0)
    # Third miss at t=10 must wait for the t=50 retirement.
    completion = mshr.allocate(0x3, now=10.0, completion=110.0)
    assert completion == 110.0 + (50.0 - 10.0)
    assert mshr.stalls == 1


def test_full_mshr_no_delay_if_oldest_already_done():
    mshr = MSHRFile(1)
    mshr.allocate(0x1, now=0.0, completion=5.0)
    completion = mshr.allocate(0x2, now=10.0, completion=40.0)
    assert completion == 40.0
    assert mshr.stalls == 0


def test_reset_clears_state():
    mshr = MSHRFile(2)
    mshr.allocate(0x1, now=0.0, completion=50.0)
    mshr.reset()
    assert mshr.occupancy == 0
    assert mshr.lookup(0x1, now=0.0) is None


def test_occupancy_tracks_distinct_blocks():
    mshr = MSHRFile(8)
    for i in range(5):
        mshr.allocate(i, now=0.0, completion=100.0 + i)
    assert mshr.occupancy == 5
