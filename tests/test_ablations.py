"""Tests for the beyond-the-paper ablation experiments."""

import pytest

from repro.experiments.ablations import (
    ABLATIONS,
    BypassFirstChromePolicy,
    NoBypassChromePolicy,
    abl_sampling,
    extended_baselines,
)
from repro.experiments.figures import EXPERIMENTS, run_experiment
from repro.experiments.runner import ExperimentScale, Runner
from repro.core.config import ACTION_BYPASS
from repro.sim.access import DEMAND, AccessInfo
from repro.sim.cache import Cache

TINY = ExperimentScale(
    machine_scale=1 / 64,
    accesses_per_core=300,
    warmup_per_core=60,
    workload_limit=2,
    hetero_mixes=2,
)


@pytest.fixture(scope="module")
def runner():
    return Runner(TINY)


def _info(block):
    return AccessInfo(pc=0x400, address=block << 6, block_addr=block, core=0, type=DEMAND)


def test_no_bypass_variant_never_bypasses():
    policy = NoBypassChromePolicy()
    cache = Cache("llc", 64 * 2 * 4, 2, latency=1.0, policy=policy)
    for i in range(64):
        assert cache.decide_bypass(_info(i)) is False
    assert policy.bypass_decisions == 0


def test_bypass_first_variant_prefers_bypass_cold():
    policy = BypassFirstChromePolicy()
    assert policy._miss_actions[0] == ACTION_BYPASS
    cache = Cache("llc", 64 * 2 * 4, 2, latency=1.0, policy=policy)
    bypasses = sum(cache.decide_bypass(_info(i)) for i in range(32))
    assert bypasses > 16  # cold states choose bypass


def test_ablation_registry_reachable_via_run_experiment(runner):
    result = run_experiment("abl_tiebreak", runner)
    assert result.experiment_id == "abl_tiebreak"
    assert len(result.rows) == 2


def test_abl_sampling_sweeps_densities(runner):
    result = abl_sampling(runner)
    densities = result.column("sampled_sets")
    assert densities == sorted(densities)
    assert 64 in densities


def test_extended_baselines_structure(runner):
    result = extended_baselines(runner)
    assert set(result.column("scheme")) == {"random", "srrip", "drrip", "ship++", "chrome"}


def test_all_ablations_registered():
    run_experiment("abl_bypass", Runner(TINY))  # triggers registration
    for name in ABLATIONS:
        assert name in EXPERIMENTS
