"""Unit tests for the banked DRAM timing model."""

from repro.sim.dram import DRAMConfig, DRAMModel


def test_default_geometry_matches_table_v():
    cfg = DRAMConfig()
    assert cfg.channels == 2
    assert cfg.ranks_per_channel == 2
    assert cfg.banks_per_rank == 8
    assert cfg.total_banks == 32
    # 12.5ns at 4GHz = 50 cycles
    assert cfg.trp == cfg.trcd == cfg.tcas == 50.0


def test_row_miss_then_row_hit_latency():
    dram = DRAMModel()
    cfg = dram.config
    first = dram.access(0x1000, cycle=0.0)
    assert first == cfg.row_miss_latency + cfg.burst
    # Same row (consecutive block), bank now busy until `first`.
    second = dram.access(0x1000 + 4, cycle=first)
    assert second == cfg.row_hit_latency + cfg.burst


def test_row_conflict_reopens_row():
    dram = DRAMModel()
    cfg = dram.config
    t = dram.access(0x0, cycle=0.0)
    # Same bank, different row: block addr differs in high bits only.
    far = 1 << (cfg.column_blocks_bits + 10)
    block = far * dram.config.ranks_per_channel * dram.config.banks_per_rank * 2
    latency = dram.access(block, cycle=t)
    assert latency >= cfg.row_miss_latency


def test_bank_queueing_under_contention():
    dram = DRAMModel()
    cfg = dram.config
    l1 = dram.access(0x40, cycle=0.0)
    # Second request to the same bank issued immediately: must queue.
    l2 = dram.access(0x40, cycle=0.0)
    assert l2 > l1 - cfg.burst  # waited behind the first request


def test_average_latency_between_hit_and_miss():
    cfg = DRAMConfig()
    assert cfg.row_hit_latency < cfg.average_latency - cfg.burst < cfg.row_miss_latency


def test_read_write_counters():
    dram = DRAMModel()
    dram.access(0x1, 0.0)
    dram.access(0x2, 0.0, is_write=True)
    assert dram.reads == 1
    assert dram.writes == 1


def test_row_hit_rate_tracks_locality():
    dram = DRAMModel()
    start = 0.0
    for i in range(32):
        start += dram.access(i * 2, cycle=start)  # same channel, sequential
    assert dram.row_hit_rate > 0.5


def test_reset_restores_cold_state():
    dram = DRAMModel()
    dram.access(0x1000, 0.0)
    dram.reset()
    assert dram.reads == 0
    cfg = dram.config
    assert dram.access(0x1000, 0.0) == cfg.row_miss_latency + cfg.burst


def test_distinct_channels_do_not_queue_each_other():
    dram = DRAMModel()
    l1 = dram.access(0, cycle=0.0)  # channel 0
    l2 = dram.access(1, cycle=0.0)  # channel 1
    assert l2 == l1  # identical cold latency, no cross-channel queueing
