"""Tests for DRAM backlog probing, FR-FCFS row batching, and
prefetch shedding under memory-system pressure."""

from repro.sim.cache import Cache
from repro.sim.camat import CAMATMonitor
from repro.sim.core_model import CoreConfig
from repro.sim.dram import DRAMModel, _Bank
from repro.sim.hierarchy import CoreHierarchy
from repro.sim.prefetch.next_line import NextLinePrefetcher
from repro.traces.trace import MemoryAccess


def test_backlog_zero_when_idle():
    dram = DRAMModel()
    assert dram.backlog(0x1000, cycle=0.0) == 0.0


def test_backlog_positive_after_burst():
    dram = DRAMModel()
    for _ in range(10):
        dram.access(0x40, cycle=0.0)  # same bank, immediate re-requests
    assert dram.backlog(0x40, cycle=0.0) > 0.0


def test_backlog_drains_with_time():
    dram = DRAMModel()
    for _ in range(5):
        dram.access(0x40, cycle=0.0)
    early = dram.backlog(0x40, cycle=0.0)
    late = dram.backlog(0x40, cycle=early + 1000.0)
    assert late == 0.0


def test_fr_fcfs_recent_rows_window():
    bank = _Bank()
    for row in range(10):
        bank.open_row_for(row)
    assert len(bank.recent_rows) <= 4
    assert bank.row_is_open(9)
    assert not bank.row_is_open(0)


def test_fr_fcfs_interleaved_streams_keep_row_hits():
    """Two interleaved sequential streams on the same bank should both
    enjoy row hits thanks to the FR-FCFS batching window."""
    dram = DRAMModel()
    cycle = 0.0
    # find two block addresses in the same bank but different rows
    a_base = 0
    bank_count = dram.config.ranks_per_channel * dram.config.banks_per_rank
    stride_rows = dram.config.channels * bank_count << dram.config.column_blocks_bits
    b_base = stride_rows  # same bank, next row
    for i in range(0, 40, 2):
        cycle += dram.access(a_base + i, cycle)
        cycle += dram.access(b_base + i, cycle)
    assert dram.row_hit_rate > 0.6


def _hierarchy(l1_pf=None):
    l1 = Cache("l1", 64 * 2 * 4, 2, latency=2.0, mshr_entries=8)
    l2 = Cache("l2", 64 * 4 * 8, 4, latency=6.0, mshr_entries=16)
    llc = Cache("llc", 64 * 4 * 16, 4, latency=20.0, mshr_entries=8,
                track_mgmt_stats=True)
    dram = DRAMModel()
    camat = CAMATMonitor(num_cores=1, t_mem=100.0)
    return CoreHierarchy(
        core_id=0, l1=l1, l2=l2, llc=llc, dram=dram, camat=camat,
        l1_prefetcher=l1_pf or NextLinePrefetcher(degree=1),
        core_config=CoreConfig(width=1),
    )


def test_prefetch_shed_when_dram_backlogged():
    core = _hierarchy()
    # Saturate the target bank far beyond the shedding threshold.
    for bank in core.dram._banks:
        bank.busy_until = 1e7
    core.execute(MemoryAccess(0x400, 0x10000))
    assert core.prefetch_drops >= 1


def test_prefetch_shed_when_llc_mshr_full():
    core = _hierarchy()
    # Staggered completions: the demand miss retires only the soonest
    # entry, leaving the file full when the prefetch arrives.
    for i in range(8):
        core.llc.mshr.allocate(0x9000 + i, now=0.0, completion=1e9 + i * 1e6)
    core.execute(MemoryAccess(0x400, 0x20000))
    assert core.prefetch_drops >= 1


def test_prefetch_not_shed_when_idle():
    core = _hierarchy()
    core.execute(MemoryAccess(0x400, 0x30000))
    assert core.prefetch_drops == 0
    # the next line was prefetched
    assert core.l1.probe((0x30000 >> 6) + 1)


def test_prefetch_to_resident_llc_block_not_shed():
    """If the line is already in the LLC, congestion must not block the
    (cheap) upward fill."""
    core = _hierarchy()
    target = 0x40000 + 64
    core.execute(MemoryAccess(0x400, target))  # brings target into LLC
    core.l1.invalidate(target >> 6)
    core.l2.invalidate(target >> 6)
    for bank in core.dram._banks:
        bank.busy_until = 1e7
    drops_before = core.prefetch_drops
    core.execute(MemoryAccess(0x404, 0x40000))  # prefetches target
    assert core.prefetch_drops == drops_before
