"""Fleet warm starts across a real process boundary (satellite of PR 8).

The ops snapshot ring persists fleet-shaped agent states
(:meth:`SnapshotRing.save_latest` -> one JSON file per shard);
:func:`load_fleet_states` reads them back.  The guarantee pinned here:
a fleet rebuilt *in a different Python process* from those files and
fed the same continuation stream is bit-identical to a fleet
warm-started in this process — learned state, RNG streams, and served
metrics all agree exactly.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.cluster.cluster import ClusterService
from repro.ops.snapshots import SnapshotRing, load_fleet_states
from repro.serve.config import ServiceConfig
from repro.serve.service import replay_requests
from repro.serve.workloads import build_workload

NUM_SHARDS = 3

_CONFIG_PARAMS = dict(
    capacity_bytes=1 << 20,
    num_segments=16,
    policy="chrome",
    num_clients=4,
    seed=29,
    workload_name="zipf_scan",
)


def _config() -> ServiceConfig:
    return ServiceConfig.from_params(**_CONFIG_PARAMS)


def _continue_fleet(snapshot_dir) -> dict:
    """Warm-start a fresh fleet from ``snapshot_dir`` and replay the
    continuation stream; returns a JSON-safe summary of where it ended.

    This function is what the subprocess runs too (it imports this
    module), so both sides of the comparison execute identical code —
    the only variable is the process boundary.
    """
    cluster = ClusterService(_config(), NUM_SHARDS)
    cluster.load_agent_states(load_fleet_states(snapshot_dir), keep_rng=False)
    replay_requests(cluster, build_workload("zipf_scan", 800, seed=23))
    served = [
        (r.metrics.requests, r.metrics.hits, r.metrics.bytes_hit)
        for r in cluster.signal_recorders()
    ]
    return json.loads(
        json.dumps({"states": cluster.agent_states(), "served": served})
    )


_CHILD = """\
import json, sys
sys.path.insert(0, {test_dir!r})
from test_fleet_warmstart import _continue_fleet
json.dump(_continue_fleet(sys.argv[1]), open(sys.argv[2], "w"))
"""


def test_fleet_warm_start_bit_identical_across_process_boundary(tmp_path):
    # Train a fleet, push its state through the ops snapshot ring, and
    # persist the newest entry the way a guarded run would.
    cluster = ClusterService(_config(), NUM_SHARDS)
    replay_requests(cluster, build_workload("zipf_scan", 1500, seed=22))
    ring = SnapshotRing(2)
    ring.push(0, cluster.agent_states())
    snap_dir = tmp_path / "ring"
    assert ring.save_latest(snap_dir) == NUM_SHARDS

    # Reference: warm-start and continue inside this process.
    here = _continue_fleet(snap_dir)
    # The snapshots really carried learned state (not a cold table).
    assert any(s["qtable"]["updates"] > 0 for s in here["states"])

    # Subject: the same continuation in a fresh Python process.
    child = tmp_path / "child.py"
    child.write_text(
        _CHILD.format(test_dir=str(Path(__file__).resolve().parent))
    )
    out_path = tmp_path / "out.json"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    subprocess.run(
        [sys.executable, str(child), str(snap_dir), str(out_path)],
        check=True,
        env=env,
        timeout=300,
    )
    there = json.loads(out_path.read_text())
    assert there == here

    # And restarting twice in-process agrees with itself (sanity that
    # the comparison is not vacuous on freshly re-read files).
    assert _continue_fleet(snap_dir) == here
