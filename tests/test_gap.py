"""Unit tests for the GAP graph-kernel trace generators."""

import numpy as np
import pytest

from repro.traces.gap import (
    DATASETS,
    GAP_TRACES,
    KERNELS,
    NEIGHBORS_BASE,
    OFFSETS_BASE,
    PROP_BASE,
    build_gap_trace,
    build_graph,
)


def test_trace_catalog_matches_paper():
    assert len(GAP_TRACES) == 15  # 5 kernels x 3 datasets
    assert set(KERNELS) == {"bc", "bfs", "cc", "pr", "sssp"}
    assert set(DATASETS) == {"or", "tw", "ur"}


def test_build_graph_csr_invariants():
    offsets, neighbors = build_graph("ur", num_vertices=512, avg_degree=4)
    assert offsets[0] == 0
    assert offsets[-1] == len(neighbors)
    assert np.all(np.diff(offsets) >= 0)  # monotone offsets
    assert neighbors.min() >= 0
    assert neighbors.max() < 512


def test_power_law_datasets_are_skewed():
    _, nb_tw = build_graph("tw", num_vertices=2048, avg_degree=8)
    _, nb_ur = build_graph("ur", num_vertices=2048, avg_degree=8)
    # Max in-degree concentration is far higher in the power-law graph.
    tw_top = np.bincount(nb_tw, minlength=2048).max()
    ur_top = np.bincount(nb_ur, minlength=2048).max()
    assert tw_top > 4 * ur_top


def test_build_graph_cached():
    a = build_graph("ur", num_vertices=256, avg_degree=4)
    b = build_graph("ur", num_vertices=256, avg_degree=4)
    assert a[0] is b[0]


def test_every_kernel_builds_and_yields():
    for name in GAP_TRACES:
        trace = build_gap_trace(name, 300, num_vertices=256, avg_degree=4)
        recs = list(trace)
        assert len(recs) == 300, name


def test_unknown_trace_name_raises():
    with pytest.raises(KeyError):
        build_gap_trace("pagerank-orkut", 10)
    with pytest.raises(KeyError):
        build_gap_trace("bfs", 10)


def test_bfs_touches_all_three_array_regions():
    recs = list(build_gap_trace("bfs-ur", 2000, num_vertices=512, avg_degree=8))
    regions = {r.address & ~((1 << 38) - 1) for r in recs}
    assert OFFSETS_BASE & ~((1 << 38) - 1) in regions
    assert NEIGHBORS_BASE & ~((1 << 38) - 1) in regions
    assert PROP_BASE & ~((1 << 38) - 1) in regions


def test_bfs_has_writes_for_parent_updates():
    recs = list(build_gap_trace("bfs-ur", 3000, num_vertices=512, avg_degree=8))
    assert any(r.is_write for r in recs)


def test_traces_deterministic_per_seed():
    a = list(build_gap_trace("sssp-tw", 500, seed=3, num_vertices=256))
    b = list(build_gap_trace("sssp-tw", 500, seed=3, num_vertices=256))
    assert a == b


def test_pr_sweeps_offsets_sequentially():
    recs = list(build_gap_trace("pr-ur", 5000, num_vertices=512, avg_degree=4))
    offset_reads = [r for r in recs if OFFSETS_BASE <= r.address < NEIGHBORS_BASE]
    idx = [(r.address - OFFSETS_BASE) // 8 for r in offset_reads]
    # PageRank iterates vertices in order: indices are non-decreasing
    # within an iteration (allow wrap at iteration boundary).
    wraps = sum(1 for a, b in zip(idx, idx[1:]) if b < a)
    assert wraps <= 1 + len(idx) // 512


def test_scale_controls_graph_size():
    small = build_gap_trace("bfs-ur", 100, scale=1 / 256)
    assert small.metadata["suite"] == "gap"
    # smallest graphs clamp to 1024 vertices
    recs = list(small)
    assert len(recs) == 100


def test_neighbor_accesses_are_bursty_sequential():
    """Within one vertex's edge scan, neighbor-array reads are
    consecutive — the signature GAP pattern prefetchers exploit."""
    recs = list(build_gap_trace("pr-ur", 3000, num_vertices=512, avg_degree=8))
    nbr = [
        (r.address - NEIGHBORS_BASE) // 8
        for r in recs
        if NEIGHBORS_BASE <= r.address < PROP_BASE
    ]
    sequential = sum(1 for a, b in zip(nbr, nbr[1:]) if b == a + 1)
    assert sequential > len(nbr) * 0.5
