"""Differential tests for the chaos-capable serving layer.

Three bit-identity claims, each checked against an *independent*
reference rather than a re-run of the same code path:

1. **resilience at defaults is invisible** — running the committed
   golden scenarios through the resilient pipeline (default
   :class:`ResilienceConfig`, no faults) reproduces the *pre-chaos*
   golden file byte-for-byte.  The degraded pipeline engages (breaker
   checks, stale retention, the attempt loop) yet every float matches
   the legacy path, because on a healthy origin no knob ever fires;
2. **client-count invariance survives chaos** — with faults injected,
   ``num_clients=1`` (the plain synchronous loop) and
   ``num_clients=64`` (the sequenced asyncio driver) produce identical
   metrics, including every degradation counter;
3. **process invariance** — a fresh ``python`` subprocess running the
   same chaos job reproduces this process's stats exactly (fault
   decisions are pure hashes, not ``hash()`` or ambient RNG, so
   nothing depends on interpreter state).
"""

from __future__ import annotations

import json
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.serve.jobs import ServeJob
from repro.serve.resilience import ResilienceConfig

from tests.test_golden_determinism import (
    SERVE_GOLDEN_PATH,
    _serve_fault_stats,
    _serve_stats,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _golden_job(workload: str, policy: str) -> ServeJob:
    """The exact job shape behind the committed serve golden cases."""
    return ServeJob(
        workload=workload,
        policy=policy,
        num_requests=1200,
        warmup_requests=200,
        capacity_bytes=2 << 20,
        num_segments=64,
        num_clients=5,
        seed=17,
        checkpoint_every=400,
    )


CHAOS_FAULTS = (
    ("seed", 9),
    ("error_rate", 0.02),
    ("spike_rate", 0.03),
    ("spike_multiplier", 6.0),
    ("burst_every_ms", 140.0),
    ("burst_duration_ms", 20.0),
    ("outage_every_ms", 210.0),
    ("outage_duration_ms", 45.0),
    ("recovery_ramp_ms", 25.0),
    ("brownout_tenant", 2),
    ("brownout_every_ms", 160.0),
    ("brownout_duration_ms", 35.0),
)

CHAOS_RESILIENCE = (
    ("timeout_ms", 25.0),
    ("breaker_open_ms", 5.0),
    ("shed_outstanding", 24),
)


def _chaos_job(policy: str, workload: str = "multitenant") -> ServeJob:
    return replace(
        _golden_job(workload, policy),
        fault_params=CHAOS_FAULTS,
        resilience_params=CHAOS_RESILIENCE,
    )


# --- 1. default resilience reproduces the pre-chaos golden -------------------


@pytest.mark.parametrize(
    "case, workload, policy",
    [
        ("lru_zipf_scan", "zipf_scan", "lru"),
        ("chrome_zipf_scan", "zipf_scan", "chrome"),
        ("chrome_multitenant", "multitenant", "chrome"),
        ("s3fifo_phases", "phases", "s3fifo"),
    ],
)
def test_default_resilience_matches_committed_golden(
    case: str, workload: str, policy: str
) -> None:
    golden = json.loads(SERVE_GOLDEN_PATH.read_text())
    job = replace(
        _golden_job(workload, policy),
        resilience_params=(("preset", "default"),),
    )
    # sanity: the spec really selects the degraded pipeline with the
    # all-defaults policy, not the legacy path
    assert job.build_resilience() == ResilienceConfig()
    assert _serve_stats(job.execute()) == golden[case], (
        f"{case}: the resilient pipeline with default knobs diverged "
        "from the legacy request path — graceful degradation must be "
        "a no-op on a healthy origin"
    )


def test_default_resilience_pipeline_actually_engages() -> None:
    """The previous test is only meaningful if the resilient branch ran:
    the degraded path leaves a fingerprint (stale retention tracks
    evictions) that the legacy path never produces."""
    from repro.serve.metrics import MetricsRecorder
    from repro.serve.service import CacheService, replay_requests
    from repro.serve.store import ObjectStore
    from repro.serve.workloads import build_workload

    job = _golden_job("zipf_scan", "lru")
    requests = build_workload(
        job.workload, job.num_requests + job.warmup_requests, seed=job.seed
    )
    recorder = MetricsRecorder(policy=job.policy, workload=job.workload)
    store = ObjectStore(job.capacity_bytes, job.num_segments, job.build_policy())
    service = CacheService(
        store,
        recorder=recorder,
        warmup_requests=job.warmup_requests,
        resilience=ResilienceConfig(),
    )
    assert service.resilience is not None
    replay_requests(service, requests)
    metrics = recorder.finalize()
    assert metrics.evictions > 0
    assert service.resilience.stale_retained > 0  # evict hook fired
    assert metrics.errors == metrics.shed == metrics.retries == 0


# --- 2. chaos runs are client-count invariant --------------------------------


@pytest.mark.parametrize("policy", ["lru", "chrome"])
def test_chaos_bit_identical_across_client_counts(policy: str) -> None:
    base = _chaos_job(policy)
    serial = _serve_fault_stats(replace(base, num_clients=1).execute())
    concurrent = _serve_fault_stats(replace(base, num_clients=64).execute())
    assert serial == concurrent, (
        "fault decisions or degradation state leaked scheduling order: "
        "num_clients=1 and num_clients=64 diverged under chaos"
    )
    # the comparison is only interesting if chaos actually happened
    assert serial["errors"] > 0
    assert serial["retries"] > 0


# --- 3. chaos runs are process invariant -------------------------------------

_SUBPROCESS_SCRIPT = """
import json, sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {root!r})
from repro.serve.jobs import ServeJob
from tests.test_golden_determinism import _serve_fault_stats
job = ServeJob(**json.loads(sys.stdin.read()))
print(json.dumps(_serve_fault_stats(job.execute()), sort_keys=True))
"""


def _job_spec_json(job: ServeJob) -> str:
    spec = {
        "workload": job.workload,
        "policy": job.policy,
        "num_requests": job.num_requests,
        "warmup_requests": job.warmup_requests,
        "capacity_bytes": job.capacity_bytes,
        "num_segments": job.num_segments,
        "num_clients": job.num_clients,
        "seed": job.seed,
        "checkpoint_every": job.checkpoint_every,
        "fault_params": [list(p) for p in job.fault_params],
        "resilience_params": [list(p) for p in job.resilience_params],
    }
    return json.dumps(spec)


def test_chaos_reproducible_across_processes() -> None:
    job = _chaos_job("chrome", workload="zipf_scan")
    here = _serve_fault_stats(job.execute())
    script = _SUBPROCESS_SCRIPT.format(
        src=SRC, root=str(Path(__file__).resolve().parent.parent)
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        input=_job_spec_json(job),
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    subprocess_stats = json.loads(proc.stdout)
    # the job round-trips through JSON, which turns param tuples into
    # lists; canonicalize via a JSON round-trip of the local stats too
    assert subprocess_stats == json.loads(json.dumps(here, sort_keys=True))
    assert subprocess_stats["errors"] > 0


# --- backoff attempt ladder -----------------------------------------------------


@pytest.mark.parametrize(
    "attempt,expected_base",
    [
        (1, 2.0),   # base: first retry waits backoff_base_ms
        (2, 4.0),   # growth: base * multiplier
        (3, 8.0),
        (5, 32.0),
        (6, 50.0),  # cap: 64 ms clamped to backoff_cap_ms
        (9, 50.0),  # stays capped arbitrarily deep into the ladder
        (0, 2.0),   # defensive clamp: never below base (pre-fix this
                    # underflowed to base / multiplier = 1.0)
    ],
)
def test_backoff_attempt_ladder(attempt: int, expected_base: float) -> None:
    from repro.serve.resilience import ResilienceState

    state = ResilienceState(ResilienceConfig(seed=3))
    cfg = state.config
    for seq in (0, 7, 1001):
        backoff = state.backoff_ms(seq, attempt)
        # jitter is additive and bounded: [expected, expected * (1 + jf))
        assert backoff >= expected_base
        assert backoff < expected_base * (1.0 + cfg.jitter_fraction)
        # deterministic: a pure hash of (seed, seq, attempt)
        assert state.backoff_ms(seq, attempt) == backoff


def test_backoff_without_jitter_is_exact() -> None:
    from repro.serve.resilience import ResilienceState

    state = ResilienceState(ResilienceConfig(jitter_fraction=0.0))
    assert [state.backoff_ms(0, a) for a in (1, 2, 3, 4, 5, 6, 7)] == [
        2.0, 4.0, 8.0, 16.0, 32.0, 50.0, 50.0
    ]
    assert state.backoff_ms(0, 0) == 2.0  # clamped, not 1.0
