"""Integration tests for the multi-core system and run loop."""

import pytest

from repro.sim.multicore import (
    PREFETCH_CONFIGS,
    MultiCoreSystem,
    SystemConfig,
)
from repro.sim.replacement.lru import LRUPolicy
from repro.core.chrome import ChromePolicy
from repro.traces.mixes import heterogeneous_mix, homogeneous_mix
from repro.traces.trace import MemoryAccess, Trace

SCALE = 1 / 64


def _config(cores=2):
    return SystemConfig(num_cores=cores, scale=SCALE)


def test_effective_sizes_power_of_two_sets():
    cfg = _config()
    for size, ways in (
        (cfg.l1_effective_size, cfg.l1_ways),
        (cfg.l2_effective_size, cfg.l2_ways),
        (cfg.llc_effective_size, cfg.llc_ways),
    ):
        sets = size // (64 * ways)
        assert sets > 0 and (sets & (sets - 1)) == 0


def test_llc_scales_with_core_count():
    small = SystemConfig(num_cores=2, scale=SCALE).llc_effective_size
    big = SystemConfig(num_cores=8, scale=SCALE).llc_effective_size
    assert big > small


def test_unknown_prefetch_config_rejected():
    with pytest.raises(KeyError):
        MultiCoreSystem(_config(), prefetch_config="magic")


def test_all_prefetch_configs_instantiate():
    for name in PREFETCH_CONFIGS:
        MultiCoreSystem(_config(), prefetch_config=name)


def test_run_requires_matching_trace_count():
    system = MultiCoreSystem(_config(cores=2))
    traces = homogeneous_mix("hmmer06", 4, 100, scale=SCALE)
    with pytest.raises(ValueError):
        system.run(traces)


def test_run_produces_per_core_results():
    system = MultiCoreSystem(_config(cores=2))
    traces = homogeneous_mix("hmmer06", 2, 500, scale=SCALE)
    result = system.run(traces)
    assert len(result.cores) == 2
    for core in result.cores:
        assert core.instructions > 0
        assert core.ipc > 0


def test_homogeneous_cores_progress_similarly():
    system = MultiCoreSystem(_config(cores=2))
    traces = homogeneous_mix("hmmer06", 2, 800, scale=SCALE)
    result = system.run(traces)
    ipcs = result.ipcs
    assert ipcs[0] == pytest.approx(ipcs[1], rel=0.25)


def test_warmup_resets_measured_stats():
    system = MultiCoreSystem(_config(cores=1))
    traces = homogeneous_mix("libquantum06", 1, 1000, scale=SCALE)
    result = system.run(traces, warmup_accesses=500)
    cold = MultiCoreSystem(_config(cores=1)).run(
        homogeneous_mix("libquantum06", 1, 1000, scale=SCALE)
    )
    # Warm run counts only the measured region: fewer demand accesses.
    assert result.llc_stats.demand_accesses <= cold.llc_stats.demand_accesses


def test_max_accesses_cap():
    system = MultiCoreSystem(_config(cores=1))
    traces = homogeneous_mix("libquantum06", 1, 5000, scale=SCALE)
    result = system.run(traces, max_accesses_per_core=300)
    full = MultiCoreSystem(_config(cores=1)).run(
        homogeneous_mix("libquantum06", 1, 5000, scale=SCALE)
    )
    assert result.cores[0].instructions < full.cores[0].instructions


def test_policy_telemetry_exposed_for_chrome():
    system = MultiCoreSystem(_config(cores=1), llc_policy=ChromePolicy())
    traces = homogeneous_mix("hmmer06", 1, 600, scale=SCALE)
    result = system.run(traces)
    assert "policy_telemetry" in result.extra
    assert result.extra["policy_telemetry"]["decisions"] > 0


def test_care_receives_epoch_feedback():
    from repro.sim.replacement.care import CAREPolicy

    policy = CAREPolicy(num_cores=2)
    config = SystemConfig(num_cores=2, scale=SCALE, epoch_cycles=1000.0)
    system = MultiCoreSystem(config, llc_policy=policy)
    traces = homogeneous_mix("mcf06", 2, 1500, scale=SCALE)
    system.run(traces)
    assert any(s.epochs > 0 for s in system.camat.cores)


def test_shorter_trace_core_finishes_early():
    system = MultiCoreSystem(_config(cores=2))
    short = homogeneous_mix("hmmer06", 1, 100, scale=SCALE)[0]
    long = homogeneous_mix("libquantum06", 1, 1000, scale=SCALE)[0]
    result = system.run([short, long])
    assert result.cores[0].instructions < result.cores[1].instructions


def test_heterogeneous_mix_runs():
    system = MultiCoreSystem(_config(cores=2))
    traces = heterogeneous_mix(["mcf06", "libquantum06"], 500, scale=SCALE)
    result = system.run(traces)
    assert all(c.ipc > 0 for c in result.cores)


def test_ephr_stays_a_ratio_across_warmup_boundary():
    """Blocks prefetched during warmup may hit in the measured region;
    EPHR must still be hits-per-inserted-prefetch (<= 1)."""
    system = MultiCoreSystem(_config(cores=2), llc_policy=ChromePolicy())
    traces = homogeneous_mix("libquantum06", 2, 1200, scale=SCALE)
    result = system.run(traces, warmup_accesses=600)
    assert 0.0 <= result.llc_mgmt.ephr <= 1.0


def test_empty_trace_ok():
    system = MultiCoreSystem(_config(cores=1))
    empty = Trace(name="empty", records=[])
    result = system.run([empty])
    assert result.cores[0].instructions == 0
