"""Property-based invariant tests for the serving layer.

Rather than pinning exact numbers (the goldens do that), this suite
sweeps *seeded random configurations* — workload, store geometry,
client count, fault model, resilience policy — and checks invariants
that must hold for every :class:`~repro.serve.policies.ServePolicy`
(classic baselines and the CHROME agent alike), healthy or under
injected chaos:

* **occupancy** — no segment ever holds more bytes than its budget,
  and the store never exceeds its total capacity;
* **fit** — every admitted object fits inside one segment (oversized
  objects are forced bypasses, never cached);
* **conservation** — every request ends in exactly one of
  {fresh hit, origin-served miss, stale serve, error, shed}:
  ``hits + origin_served + stale_served + errors + shed == requests``;
* **ratios** — object/byte hit ratios, error rate and degraded
  fraction all live in ``[0, 1]``;
* **retry/timeout bounds** — at most ``max_attempts - 1`` retries per
  origin-eligible request, and (because ``timeout_ms`` is a whole-
  request budget) at most one timeout per non-hit request;
* **breaker isolation** — while a tenant's breaker denies, the backend
  is never fetched for that request (checked by instrumenting
  ``CircuitBreaker.allow`` and ``Backend.fetch`` — the breaker class
  is deliberately slot-free to allow exactly this).

No extra dependencies: the "property-based" sweep is a seeded
``random.Random`` over the config space, ≥20 configurations per
policy, reproducible by construction.
"""

from __future__ import annotations

import random

import pytest

from repro.serve.jobs import ServeJob
from repro.serve.metrics import MetricsRecorder
from repro.serve.service import CacheService, _drive, replay_requests
from repro.serve.store import ObjectStore
from repro.serve.workloads import build_workload

POLICIES = ("lru", "lfu", "gdsf", "s3fifo", "chrome")
WORKLOADS = ("zipf_scan", "multitenant", "phases", "bursty")
CONFIGS_PER_POLICY = 20


class AuditedStore(ObjectStore):
    """ObjectStore that re-checks occupancy and fit after every admit."""

    def admit(self, req):
        admitted = super().admit(req)
        if admitted:
            assert req.size <= self.segment_capacity, (
                f"admitted object of {req.size}B into "
                f"{self.segment_capacity}B segments"
            )
        for seg_idx, used in enumerate(self._segment_bytes):
            assert 0 <= used <= self.segment_capacity, (
                f"segment {seg_idx} holds {used}B, "
                f"budget {self.segment_capacity}B"
            )
        assert self.used_bytes <= self.capacity_bytes
        return admitted


class BreakerGuard:
    """Asserts the backend is never touched for a breaker-denied request.

    Wraps every per-tenant ``CircuitBreaker.allow`` to record whether
    the *current* request was denied, and ``Backend.fetch`` to assert
    no fetch happens while that flag is set.  Request processing is
    sequenced, and ``allow`` always runs before any fetch of the same
    request, so a single flag is race-free.
    """

    def __init__(self, service: CacheService, max_tenants: int = 8) -> None:
        self.denied = False
        res = service.resilience
        assert res is not None
        for tenant in range(max_tenants):
            breaker = res.breaker(tenant)
            self._wrap_allow(breaker)
        orig_fetch = service.backend.fetch
        guard = self

        def checked_fetch(size, now_ms):
            assert not guard.denied, "backend fetched while breaker open"
            return orig_fetch(size, now_ms)

        service.backend.fetch = checked_fetch

    def _wrap_allow(self, breaker) -> None:
        orig_allow = breaker.allow
        guard = self

        def checked_allow(now_ms):
            allowed, probing = orig_allow(now_ms)
            guard.denied = not allowed
            return allowed, probing

        breaker.allow = checked_allow


def random_job(rng: random.Random, policy: str) -> ServeJob:
    """One seeded point in the (workload, geometry, chaos) config space."""
    num_segments = rng.choice((16, 32, 64))
    fault_params = ()
    if rng.random() < 0.75:  # 25% of configs stay healthy
        horizon = 500 * 0.5
        fault_params = (
            ("seed", rng.randrange(1 << 16)),
            ("error_rate", rng.choice((0.0, 0.01, 0.05))),
            ("spike_rate", rng.choice((0.0, 0.03))),
            ("spike_multiplier", rng.choice((4.0, 8.0))),
            ("burst_every_ms", rng.choice((0.0, horizon / 3))),
            ("burst_duration_ms", horizon / 12),
            ("outage_every_ms", rng.choice((0.0, horizon / 2))),
            ("outage_duration_ms", horizon / 8),
            ("recovery_ramp_ms", rng.choice((0.0, horizon / 16))),
            ("brownout_tenant", rng.choice((-1, 1))),
            ("brownout_every_ms", horizon / 2),
            ("brownout_duration_ms", horizon / 10),
        )
    resilience_choice = rng.randrange(3)
    if resilience_choice == 0 and not fault_params:
        resilience_params = ()  # legacy request path
    elif resilience_choice == 1:
        resilience_params = (("preset", "none"),)  # naive control
    else:
        resilience_params = (
            ("max_attempts", rng.choice((1, 2, 3, 4))),
            ("timeout_ms", rng.choice((0.0, 20.0, 45.0))),
            ("breaker_failure_threshold", rng.choice((0, 3, 8))),
            ("breaker_open_ms", rng.choice((4.0, 25.0))),
            ("stale_entries", rng.choice((0, 64, 1024))),
            ("shed_outstanding", rng.choice((0, 4, 32))),
            ("seed", rng.randrange(1 << 16)),
        )
    return ServeJob(
        workload=rng.choice(WORKLOADS),
        policy=policy,
        num_requests=rng.randrange(200, 420),
        warmup_requests=rng.choice((0, 40, 90)),
        capacity_bytes=num_segments * rng.choice((24 << 10, 48 << 10, 96 << 10)),
        num_segments=num_segments,
        num_clients=rng.choice((1, 3, 8)),
        seed=rng.randrange(1 << 16),
        fault_params=fault_params,
        resilience_params=resilience_params,
    )


def run_audited(job: ServeJob):
    """Mirror :meth:`ServeJob.execute` with an audited store + guards."""
    import asyncio

    total = job.num_requests + job.warmup_requests
    requests = build_workload(
        job.workload, total, seed=job.seed, **dict(job.workload_params)
    )
    recorder = MetricsRecorder(policy=job.policy, workload=job.workload)
    store = AuditedStore(
        job.capacity_bytes, job.num_segments, job.build_policy()
    )
    service = CacheService(
        store,
        recorder=recorder,
        warmup_requests=job.warmup_requests,
        faults=job.build_faults(),
        resilience=job.build_resilience(),
    )
    if service.resilience is not None:
        BreakerGuard(service)
    if job.num_clients <= 1:
        replay_requests(service, requests)
    else:
        asyncio.run(_drive(service, requests, job.num_clients))
    return recorder.finalize(), service


def check_invariants(job: ServeJob, metrics, service: CacheService) -> None:
    m = metrics
    assert m.requests == job.num_requests
    # conservation: every request has exactly one outcome
    assert (
        m.hits + m.origin_served + m.stale_served + m.errors + m.shed
        == m.requests
    ), (
        f"outcome partition broken: {m.hits}+{m.origin_served}"
        f"+{m.stale_served}+{m.errors}+{m.shed} != {m.requests}"
    )
    for ratio in (
        m.object_hit_ratio,
        m.byte_hit_ratio,
        m.error_rate,
        m.degraded_fraction,
    ):
        assert 0.0 <= ratio <= 1.0
    for tenant_metrics in m.per_tenant.values():
        assert 0.0 <= tenant_metrics.object_hit_ratio <= 1.0
        assert 0.0 <= tenant_metrics.byte_hit_ratio <= 1.0
    assert m.bytes_hit <= m.bytes_requested
    res = service.resilience
    if res is not None:
        max_attempts = res.config.max_attempts
        origin_eligible = m.requests - m.hits - m.shed
        assert m.retries <= (max_attempts - 1) * origin_eligible
        # the timeout is a whole-request budget: at most one per miss
        assert m.timeouts <= m.requests - m.hits
        # trips during warmup live in breaker state but not in metrics
        assert m.breaker_opens <= res.breaker_opens()
        if job.warmup_requests == 0:
            assert m.breaker_opens == res.breaker_opens()
        assert m.stale_served <= m.evictions or res.config.stale_entries == 0
    else:
        assert m.retries == m.timeouts == m.errors == m.shed == 0
        assert m.stale_served == 0
    # final store occupancy (the audited store checked every step too)
    assert service.store.used_bytes <= service.store.capacity_bytes


@pytest.mark.parametrize("policy", POLICIES)
def test_serve_invariants_hold_across_seeded_configs(policy: str) -> None:
    from dataclasses import replace

    rng = random.Random(f"serve-properties:{policy}")
    saw_faults = saw_resilient = saw_legacy = False
    for i in range(CONFIGS_PER_POLICY):
        job = random_job(rng, policy)
        # the first three configs pin one pipeline shape each, so every
        # policy's sweep covers legacy, naive-chaos and resilient-chaos
        # regardless of what the random stream happens to draw
        if i == 0:
            job = replace(job, fault_params=(), resilience_params=())
        elif i == 1 and not job.fault_params:
            job = replace(
                job,
                fault_params=(("seed", 3), ("error_rate", 0.05)),
                resilience_params=(("preset", "none"),),
            )
        elif i == 2 and not job.resilience_params:
            job = replace(job, resilience_params=(("max_attempts", 3),))
        saw_faults |= bool(job.fault_params)
        saw_resilient |= bool(job.resilience_params) or bool(job.fault_params)
        saw_legacy |= not job.fault_params and not job.resilience_params
        metrics, service = run_audited(job)
        check_invariants(job, metrics, service)
    # the sweep must actually exercise all three pipeline shapes
    assert saw_faults and saw_resilient and saw_legacy


def test_sweep_actually_degrades_somewhere() -> None:
    """Guard against a silently-inert sweep: across the LRU configs at
    least one run must record errors and at least one must retry."""
    rng = random.Random("serve-properties:lru")
    total_errors = total_retries = total_stale = 0
    for _ in range(CONFIGS_PER_POLICY):
        job = random_job(rng, "lru")
        metrics, _ = run_audited(job)
        total_errors += metrics.errors
        total_retries += metrics.retries
        total_stale += metrics.stale_served
    assert total_errors > 0
    assert total_retries > 0
