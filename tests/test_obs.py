"""Tests for repro.obs: instruments, timeline, tracer, session export,
and the zero-overhead-when-off contract across the sim and serve layers."""

import json

import pytest

from repro.obs import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    ObsConfig,
    Registry,
    SpanTracer,
    TimelineRecorder,
)
from repro.obs.registry import Counter, Gauge, Histogram
from repro.obs.report import render, summarize
from repro.obs.session import discover_artifacts, slugify
from repro.obs.timeline import iter_jsonl, merge_jsonl

# --- registry -----------------------------------------------------------------


def test_counter_gauge_histogram_basics():
    reg = Registry()
    c = reg.counter("a.count")
    c.inc()
    c.inc(4)
    reg.gauge("a.level").set(0.75)
    h = reg.histogram("a.latency", bounds=(1.0, 10.0))
    for v in (0.5, 5.0, 50.0):
        h.observe(v)
    snap = reg.snapshot()
    assert snap["a.count"] == {"type": "counter", "value": 5}
    assert snap["a.level"] == {"type": "gauge", "value": 0.75}
    assert snap["a.latency"]["bucket_counts"] == [1, 1, 1]
    assert snap["a.latency"]["count"] == 3
    assert snap["a.latency"]["min"] == 0.5
    assert snap["a.latency"]["max"] == 50.0


def test_registry_create_or_get_returns_same_instrument():
    reg = Registry()
    assert reg.counter("x") is reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_disabled_registry_is_noop():
    reg = Registry(enabled=False)
    c = reg.counter("never")
    g = reg.gauge("never2")
    h = reg.histogram("never3")
    assert c is NULL_COUNTER and g is NULL_GAUGE and h is NULL_HISTOGRAM
    c.inc(100)
    g.set(3.0)
    h.observe(1.0)
    reg.set_gauges("pre", {"a": 1.0})
    # Null instruments never mutate, and the registry remembers nothing.
    assert NULL_COUNTER.value == 0
    assert NULL_GAUGE.value == 0.0
    assert NULL_HISTOGRAM.count == 0
    assert reg.snapshot() == {}


def test_set_gauges_skips_non_numerics_and_bools():
    reg = Registry()
    reg.set_gauges("p", {"num": 2, "flt": 0.5, "text": "no", "flag": True})
    snap = reg.snapshot()
    assert set(snap) == {"p.num", "p.flt"}


# --- timeline -----------------------------------------------------------------


def test_timeline_roundtrip_and_merge():
    t1 = TimelineRecorder(source="job-a")
    t1.record("sim_epoch", epoch=0, camat=[1.5])
    t1.record("sim_summary", policy="lru")
    t2 = TimelineRecorder(source="job-b")
    t2.record("serve_window", seq=255)
    merged = merge_jsonl([t1.to_jsonl(), t2.to_jsonl()])
    rows = list(iter_jsonl(merged))
    assert len(rows) == 3
    assert rows[0] == {"kind": "sim_epoch", "source": "job-a", "epoch": 0,
                       "camat": [1.5]}
    assert [r["source"] for r in rows] == ["job-a", "job-a", "job-b"]
    assert t1.of_kind("sim_summary") == [{"kind": "sim_summary",
                                          "source": "job-a", "policy": "lru"}]


def test_timeline_encodes_odd_values_via_repr():
    t = TimelineRecorder()
    t.record("x", odd={1, 2})  # sets are not JSON-serializable
    (row,) = iter_jsonl(t.to_jsonl())
    assert row["odd"] in ("{1, 2}", "{2, 1}")


def test_empty_timeline_exports_empty_stream():
    assert TimelineRecorder().to_jsonl() == ""
    assert list(iter_jsonl("")) == []


# --- tracer -------------------------------------------------------------------


def test_tracer_chrome_trace_structure():
    tr = SpanTracer(process="sim")
    tr.name_thread(0, "epochs")
    tr.name_thread(1, "core0")
    tr.complete("epoch 0", 100.0, 50.0, tid=0, args={"obstructed_cores": 1})
    tr.instant("llc_obstructed", 150.0, tid=1)
    tr.counter("camat", 150.0, {"core0": 12.5})
    trace = tr.to_chrome_trace(pid=7)
    events = trace["traceEvents"]
    # 1 process_name + 2 thread_name metadata, then the 3 events.
    assert [e["ph"] for e in events] == ["M", "M", "M", "X", "i", "C"]
    assert all(e["pid"] == 7 for e in events)
    assert events[0]["args"] == {"name": "sim"}
    span = events[3]
    assert span["ts"] == 100.0 and span["dur"] == 50.0
    # The JSON form parses back to the same object.
    assert json.loads(tr.to_json(pid=7)) == trace


# --- session export -----------------------------------------------------------


def test_slugify():
    assert slugify("serve:zipf chrome +faults") == "serve_zipf_chrome_faults"
    assert slugify("   ") == "run"
    assert len(slugify("x" * 500)) == 120


def test_session_export_and_discover(tmp_path):
    config = ObsConfig(out_dir=str(tmp_path))
    session = config.session("job one")
    session.timeline.record("sim_epoch", epoch=0)
    session.registry.counter("sim.epochs").inc()
    session.tracer.instant("mark", 1.0)
    paths = session.export()
    assert paths["timeline"].name == "job_one.timeline.jsonl"
    assert len(list(iter_jsonl(paths["timeline"].read_text()))) == 1
    trace = json.loads(paths["trace"].read_text())
    assert any(e["name"] == "mark" for e in trace["traceEvents"])
    counters = json.loads(paths["counters"].read_text())
    assert counters["sim.epochs"]["value"] == 1
    found = discover_artifacts(str(tmp_path))
    assert [p.name for p in found["timeline"]] == ["job_one.timeline.jsonl"]


def test_export_writes_empty_artifacts(tmp_path):
    paths = ObsConfig(out_dir=str(tmp_path)).session("empty").export()
    assert paths["timeline"].read_text() == ""
    assert json.loads(paths["trace"].read_text())["traceEvents"]  # metadata
    assert json.loads(paths["counters"].read_text()) == {}


# --- zero-overhead contract: sim ----------------------------------------------


def _tiny_sim_job():
    from repro.experiments.jobspec import MixSpec, PolicySpec, SimJob

    return SimJob(
        mix=MixSpec.homogeneous("bfs-ur", 2),
        policy=PolicySpec.named("chrome"),
        machine_scale=0.03125,
        accesses_per_core=2500,
        warmup_per_core=500,
    )


def test_sim_results_identical_with_and_without_obs(tmp_path):
    from repro.experiments.jobspec import execute_job

    job = _tiny_sim_job()
    plain = execute_job(job)
    instrumented = execute_job(job, obs=ObsConfig(out_dir=str(tmp_path)))
    assert instrumented == plain


def test_sim_obs_artifacts_parse(tmp_path):
    from repro.experiments.jobspec import execute_job, job_fingerprint

    job = _tiny_sim_job()
    execute_job(job, obs=ObsConfig(out_dir=str(tmp_path)))
    found = discover_artifacts(str(tmp_path))
    assert len(found["timeline"]) == 1
    assert job_fingerprint(job)[:10] in found["timeline"][0].name
    rows = list(iter_jsonl(found["timeline"][0].read_text()))
    summary_rows = [r for r in rows if r["kind"] == "sim_summary"]
    assert len(summary_rows) == 1
    assert "camat_summary" in summary_rows[0]
    assert "q_health" in summary_rows[0]
    trace = json.loads(found["trace"][0].read_text())
    assert isinstance(trace["traceEvents"], list)


# --- zero-overhead contract: serve --------------------------------------------


def _serve_metrics(obs=None):
    from repro.serve.jobs import ServeJob

    job = ServeJob(
        workload="zipf_scan",
        policy="chrome",
        num_requests=1500,
        warmup_requests=200,
        capacity_bytes=1 << 22,
        num_segments=64,
        num_clients=4,
        seed=3,
        fault_params=(("outage_every_ms", 400.0), ("outage_duration_ms", 60.0)),
    )
    return job.execute(obs=obs) if obs is not None else job.execute()


def test_serve_results_identical_with_and_without_obs(tmp_path):
    plain = _serve_metrics()
    instrumented = _serve_metrics(obs=ObsConfig(out_dir=str(tmp_path),
                                                serve_window=256))
    assert instrumented == plain


def test_serve_obs_timeline_covers_breakers_and_reward_mix(tmp_path):
    _serve_metrics(obs=ObsConfig(out_dir=str(tmp_path), serve_window=200))
    found = discover_artifacts(str(tmp_path))
    rows = list(iter_jsonl(found["timeline"][0].read_text()))
    windows = [r for r in rows if r["kind"] == "serve_window"]
    assert windows, "expected sampled serve_window rows"
    assert all("breaker_states" in w and "reward_mix" in w for w in windows)
    (summary,) = [r for r in rows if r["kind"] == "serve_summary"]
    assert 0.0 <= summary["object_hit_ratio"] <= 1.0
    assert "breaker_states" in summary


# --- report -------------------------------------------------------------------


def test_report_summarize_and_render(tmp_path):
    _serve_metrics(obs=ObsConfig(out_dir=str(tmp_path), serve_window=300))
    summary = summarize(str(tmp_path))
    assert summary["sessions"] == 1
    assert summary["serve_window_rows"] > 0
    assert summary["counters"]["serve.requests"] == 1500
    text = render(summary)
    assert "serve chrome/zipf_scan" in text
    assert "hit_ratio=" in text


def test_report_on_empty_dir(tmp_path):
    summary = summarize(str(tmp_path))
    assert summary["sessions"] == 0
    assert "no artifacts found" in render(summary)
