"""Unit tests for the Evaluation Queue (Sec. V-D)."""

import pytest

from repro.core.eq import ADDR_HASH_BITS, EQEntry, EvaluationQueue, hash_block_address


def _entry(addr_hash=0x10, action=1, hit=False, core=0):
    return EQEntry(
        state=(1, 2), action=action, trigger_hit=hit, hashed_addr=addr_hash, core=core
    )


def test_fifo_size_must_allow_sarsa_pairs():
    with pytest.raises(ValueError):
        EvaluationQueue(num_queues=4, fifo_size=1)


def test_insert_below_capacity_returns_no_eviction():
    eq = EvaluationQueue(num_queues=2, fifo_size=3)
    evicted, head = eq.insert(0, _entry())
    assert evicted is None and head is None
    assert eq.occupancy(0) == 1


def test_eviction_returns_oldest_and_new_head():
    eq = EvaluationQueue(num_queues=1, fifo_size=2)
    first, second, third = _entry(1), _entry(2), _entry(3)
    eq.insert(0, first)
    eq.insert(0, second)
    evicted, head = eq.insert(0, third)
    assert evicted is first
    assert head is second  # the temporally-next action: SARSA's (S2, A2)
    assert eq.occupancy(0) == 2
    assert eq.evictions == 1


def test_queues_are_independent():
    eq = EvaluationQueue(num_queues=2, fifo_size=2)
    eq.insert(0, _entry(1))
    eq.insert(1, _entry(2))
    assert eq.occupancy(0) == 1
    assert eq.occupancy(1) == 1
    assert eq.find(0, 2) is None
    assert eq.find(1, 2) is not None


def test_find_returns_newest_match():
    eq = EvaluationQueue(num_queues=1, fifo_size=4)
    older = _entry(0x42, action=1)
    newer = _entry(0x42, action=3)
    eq.insert(0, older)
    eq.insert(0, newer)
    assert eq.find(0, 0x42) is newer


def test_find_missing_returns_none():
    eq = EvaluationQueue(num_queues=1, fifo_size=4)
    eq.insert(0, _entry(0x42))
    assert eq.find(0, 0x99) is None


def test_reward_assignment_flags():
    entry = _entry()
    assert not entry.has_reward
    entry.reward = -5.0
    assert entry.has_reward


def test_zero_reward_counts_as_assigned():
    entry = _entry()
    entry.reward = 0.0
    assert entry.has_reward


def test_hash_block_address_width():
    for block in (0, 1, 0xFFFFFFFF, 123456789):
        assert 0 <= hash_block_address(block) < (1 << ADDR_HASH_BITS)


def test_storage_bits_matches_table_iii():
    eq = EvaluationQueue(num_queues=64, fifo_size=28)
    # 64 x 28 x 58 bits = 12.7 KB
    assert eq.storage_bits() == 64 * 28 * 58
    assert round(eq.storage_bits() / 8 / 1024, 1) == 12.7


def test_insert_counter():
    eq = EvaluationQueue(num_queues=1, fifo_size=2)
    for i in range(5):
        eq.insert(0, _entry(i))
    assert eq.inserts == 5
    assert eq.evictions == 3
