"""Unit tests for the CHROME agent (Algorithm 1)."""

import pytest

from repro.core.chrome import ChromePolicy, make_nchrome_policy
from repro.core.config import (
    ACTION_BYPASS,
    ACTION_EPV_HIGH,
    ACTION_EPV_LOW,
    ACTION_EPV_MED,
    ChromeConfig,
)
from repro.core.eq import hash_block_address
from repro.sim.access import DEMAND, PREFETCH, WRITEBACK, AccessInfo
from repro.sim.cache import Cache
from repro.sim.camat import CAMATMonitor
from dataclasses import replace


def _info(block, pc=0x400, core=0, type_=DEMAND):
    return AccessInfo(pc=pc, address=block << 6, block_addr=block, core=core, type=type_)


def _chrome_cache(ways=2, sets=4, sampled=4, fifo=4, epsilon=0.0, **cfg_overrides):
    config = replace(
        ChromeConfig(),
        sampled_sets=sampled,
        eq_fifo_size=fifo,
        epsilon=epsilon,
        **cfg_overrides,
    )
    policy = ChromePolicy(config)
    cache = Cache(
        name="llc", size_bytes=64 * ways * sets, ways=ways, latency=1.0, policy=policy,
        track_mgmt_stats=True,
    )
    return cache, policy


def test_attach_sizes_eq_to_sampled_sets():
    _, policy = _chrome_cache(sets=8, sampled=4)
    assert policy.eq.num_queues == 4
    assert len(policy._sampled_queue) == 4


def test_miss_decision_records_pending_fill():
    cache, policy = _chrome_cache()
    info = _info(0)
    bypass = policy.should_bypass(info)
    if not bypass:
        assert policy._pending_fill == (0, policy._pending_fill[1])
        cache.fill(_info(0))
        assert policy._pending_fill is None


def test_fill_applies_pending_epv():
    cache, policy = _chrome_cache()
    info = _info(0)
    info.set_index = 0
    policy._pending_fill = (0, ACTION_EPV_MED)
    cache.fill(_info(0))
    way = cache._tag_maps[0][0]
    assert cache.blocks_in_set(0)[way].epv == 1


def test_writeback_fill_gets_highest_epv_without_rl():
    cache, policy = _chrome_cache()
    decisions_before = policy.decisions
    cache.fill(_info(0, type_=WRITEBACK), dirty=True)
    way = cache._tag_maps[0][0]
    assert cache.blocks_in_set(0)[way].epv == 2
    assert policy.decisions == decisions_before


def test_hit_updates_epv():
    cache, policy = _chrome_cache()
    info = _info(0)
    if not cache.decide_bypass(info):
        cache.fill(_info(0))
    if cache.probe(0):
        hit, _ = cache.access(_info(0))
        assert hit
        way = cache._tag_maps[0][0]
        assert cache.blocks_in_set(0)[way].epv in (0, 1, 2)


def test_victim_is_highest_epv_oldest_first():
    cache, policy = _chrome_cache(ways=3, sets=1, sampled=0)
    blocks = cache.blocks_in_set(0)
    for b in range(3):
        policy._pending_fill = (b, ACTION_EPV_LOW)
        cache.fill(_info(b))
    blocks[0].epv, blocks[1].epv, blocks[2].epv = 1, 2, 2
    blocks[1].last_touch, blocks[2].last_touch = 10, 5
    info = _info(9)
    info.set_index = 0
    assert policy.find_victim(info, blocks) == 2  # epv 2, older touch


def test_sampled_access_creates_eq_entry():
    cache, policy = _chrome_cache(sets=4, sampled=4)
    info = _info(0)
    cache.decide_bypass(info)  # runs the miss path on sampled set 0
    queue = policy._sampled_queue[0]
    assert policy.eq.occupancy(queue) == 1
    assert policy.sampled_accesses == 1


def test_unsampled_access_no_eq_entry():
    cache, policy = _chrome_cache(sets=8, sampled=2)
    unsampled = next(s for s in range(8) if s not in policy._sampled_queue)
    info = _info(unsampled)  # block == set for 8-set cache
    cache.decide_bypass(info)
    assert policy.eq.inserts == 0
    assert policy.decisions == 1  # decision still happens everywhere


def test_rerequest_hit_assigns_positive_reward():
    cache, policy = _chrome_cache(sets=4, sampled=4, fifo=8)
    first = _info(0)
    if not cache.decide_bypass(first):
        cache.fill(_info(0))
    queue = policy._sampled_queue[0]
    entry = policy.eq.find(queue, hash_block_address(0))
    assert entry is not None and not entry.has_reward
    # Re-request the same block.
    hit, _ = cache.access(_info(0))
    if hit:
        policy.on_hit  # hook already ran via cache.access
        assert entry.has_reward
        assert entry.reward == policy.config.rewards.accurate(False)


def test_rerequest_miss_assigns_negative_reward():
    cache, policy = _chrome_cache(sets=4, sampled=4, fifo=8)
    info = _info(0)
    cache.decide_bypass(info)  # suppose it bypassed or filled; force miss state
    queue = policy._sampled_queue[0]
    entry = policy.eq.find(queue, hash_block_address(0))
    cache.invalidate(0)
    # Next access to block 0 misses -> R_IN for the recorded action.
    second = _info(0)
    cache.access(second)
    cache.decide_bypass(second)
    assert entry.has_reward
    assert entry.reward == policy.config.rewards.inaccurate(False)


def test_prefetch_rerequest_uses_prefetch_reward():
    cache, policy = _chrome_cache(sets=4, sampled=4, fifo=8)
    info = _info(0)
    if not cache.decide_bypass(info):
        cache.fill(_info(0))
    queue = policy._sampled_queue[0]
    entry = policy.eq.find(queue, hash_block_address(0))
    if cache.probe(0):
        cache.access(_info(0, type_=PREFETCH))
        assert entry.reward == policy.config.rewards.accurate(True)


def test_eq_eviction_assigns_nr_reward_and_updates_q():
    cache, policy = _chrome_cache(sets=4, sampled=4, fifo=2)
    # Fill the set-0 FIFO past capacity with distinct blocks (all map to set 0).
    for i in range(3):
        block = i * 4  # stride num_sets keeps them in set 0
        info = _info(block)
        if not cache.decide_bypass(info):
            cache.fill(_info(block))
    assert policy.eq.evictions == 1
    assert policy.qtable.updates == 1


def test_nr_reward_polarity_for_bypass_vs_retain():
    _, policy = _chrome_cache()
    from repro.core.eq import EQEntry

    bypass_entry = EQEntry((1, 2), ACTION_BYPASS, False, 0, 0)
    retain_entry = EQEntry((1, 2), ACTION_EPV_LOW, False, 0, 0)
    assert policy._no_rerequest_reward(bypass_entry) > 0
    assert policy._no_rerequest_reward(retain_entry) < 0


def test_nr_reward_polarity_on_hit_trigger():
    _, policy = _chrome_cache()
    from repro.core.eq import EQEntry

    high = EQEntry((1, 2), ACTION_EPV_HIGH, True, 0, 0)
    low = EQEntry((1, 2), ACTION_EPV_LOW, True, 0, 0)
    assert policy._no_rerequest_reward(high) > 0
    assert policy._no_rerequest_reward(low) < 0


def test_nr_reward_uses_obstruction_flags():
    _, policy = _chrome_cache()
    from repro.core.eq import EQEntry

    monitor = CAMATMonitor(num_cores=1, t_mem=10.0, epoch_cycles=100.0)
    policy.bind_camat(monitor)
    entry = EQEntry((1, 2), ACTION_BYPASS, False, 0, 0)
    normal = policy._no_rerequest_reward(entry)
    monitor.record_llc_access(0, 0.0, 50.0)
    monitor.maybe_close_epoch(100.0)
    assert monitor.is_obstructed(0)
    obstructed = policy._no_rerequest_reward(entry)
    assert obstructed > normal


def test_sarsa_update_moves_toward_reward():
    cache, policy = _chrome_cache(sets=4, sampled=4, fifo=2)
    from repro.core.eq import EQEntry

    evicted = EQEntry((10, 20), ACTION_EPV_LOW, False, 0, 0, reward=-20.0)
    head = EQEntry((30, 40), ACTION_EPV_MED, False, 0, 0)
    before = policy.qtable.q((10, 20), ACTION_EPV_LOW)
    policy._sarsa_update(evicted, head)
    after = policy.qtable.q((10, 20), ACTION_EPV_LOW)
    assert after < before  # negative reward pulls Q down


def test_exploration_rate_zero_is_deterministic():
    cache, policy = _chrome_cache(epsilon=0.0)
    for i in range(50):
        cache.decide_bypass(_info(i))
    assert policy.explorations == 0


def test_exploration_rate_one_always_explores():
    cache, policy = _chrome_cache(epsilon=1.0)
    for i in range(20):
        cache.decide_bypass(_info(i))
    assert policy.explorations == 20


def test_bypass_learning_on_scan():
    """A pure one-pass scan (never re-requested) should teach CHROME to
    bypass: NR rewards favor ACTION_BYPASS on miss triggers."""
    cache, policy = _chrome_cache(sets=4, sampled=4, fifo=2, epsilon=0.0)
    for i in range(600):
        block = i * 4  # all in sampled set 0
        info = _info(block, pc=0x400)
        hit, _ = cache.access(info)
        if not hit and not cache.decide_bypass(info):
            cache.fill(_info(block, pc=0x400))
    # Late-run decisions should be dominated by bypasses.
    assert policy.bypass_decisions > 300


def test_telemetry_fields():
    cache, policy = _chrome_cache()
    cache.decide_bypass(_info(0))
    t = policy.telemetry()
    for key in ("decisions", "upksa", "q_updates", "sampled_accesses", "q_mean"):
        assert key in t


def test_storage_overhead_bits_counts_all_components():
    _, policy = _chrome_cache(sets=1024)
    bits = policy.storage_overhead_bits()
    assert bits > policy.qtable.storage_bits()


def test_nchrome_factory():
    policy = make_nchrome_policy()
    assert policy.name == "n-chrome"
    r = policy.config.rewards
    assert r.r_ac_nr_obstructed == r.r_ac_nr_normal == 10
    assert r.r_in_nr_obstructed == r.r_in_nr_normal == -10


def test_feature_config_changes_state_width():
    config = replace(ChromeConfig(), features=("pc_sig",))
    policy = ChromePolicy(config)
    assert policy.features.num_features == 1
    assert policy.qtable.num_features == 1
