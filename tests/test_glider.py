"""Unit tests for the Glider (online ISVM) policy."""

from repro.sim.access import DEMAND, PREFETCH, WRITEBACK, AccessInfo
from repro.sim.cache import Cache
from repro.sim.replacement.glider import (
    PCHR_LENGTH,
    PREDICT_THRESHOLD_HIGH,
    RRPV_MAX,
    WEIGHT_CLAMP,
    GliderPolicy,
)


def _info(block, pc=0x400, core=0, type_=DEMAND):
    return AccessInfo(pc=pc, address=block << 6, block_addr=block, core=core, type=type_)


def _cache(ways=2, sets=4, sampled=4):
    policy = GliderPolicy(sampled_sets=sampled, num_cores=2)
    cache = Cache(
        name="llc", size_bytes=64 * ways * sets, ways=ways, latency=1.0, policy=policy
    )
    return cache, policy


def test_pchr_tracks_distinct_recent_pcs():
    cache, policy = _cache()
    for pc in (1, 2, 3, 2, 4):
        cache.fill(_info(pc, pc=pc * 16))
    history = list(policy._pchr[0])
    assert len(history) == len(set(history))
    assert history[-1] == 4 * 16


def test_pchr_bounded_length():
    cache, policy = _cache()
    for pc in range(20):
        cache.fill(_info(pc % 4, pc=pc * 8))
    assert len(policy._pchr[0]) <= PCHR_LENGTH


def test_per_core_pchr_isolation():
    cache, policy = _cache()
    cache.fill(_info(0, pc=0x100, core=0))
    cache.fill(_info(1, pc=0x200, core=1))
    assert 0x100 in policy._pchr[0]
    assert 0x100 not in policy._pchr[1]


def test_prediction_zero_without_training():
    _, policy = _cache()
    table_idx, weights = policy._features(_info(0))
    assert policy._predict(table_idx, weights) == 0


def test_training_moves_weights():
    _, policy = _cache()
    policy._pchr[0].extend([1, 2, 3])
    features = policy._features(_info(0, pc=0x77))
    policy._train(*features, opt_hit=True)
    assert policy._predict(*features) > 0
    policy._train(*features, opt_hit=False)
    policy._train(*features, opt_hit=False)
    assert policy._predict(*features) < 0


def test_weights_clamped():
    _, policy = _cache()
    policy._pchr[0].extend([1])
    features = policy._features(_info(0, pc=0x77))
    for _ in range(100):
        policy._train(*features, opt_hit=True)
    weights = policy._isvm[features[0]]
    assert all(-WEIGHT_CLAMP <= w <= WEIGHT_CLAMP for w in weights)


def test_training_stops_past_margin():
    """Fixed-margin rule: confidently-correct predictions stop updating."""
    _, policy = _cache()
    policy._pchr[0].extend([1, 2, 3, 4, 5])
    features = policy._features(_info(0, pc=0x77))
    for _ in range(200):
        policy._train(*features, opt_hit=True)
    frozen = policy._predict(*features)
    policy._train(*features, opt_hit=True)
    assert policy._predict(*features) == frozen


def test_insertion_rrpv_mapping():
    _, policy = _cache()
    assert policy._insertion_rrpv(PREDICT_THRESHOLD_HIGH) == 0
    assert policy._insertion_rrpv(-1) == RRPV_MAX
    assert policy._insertion_rrpv(3) == 2


def test_writeback_inserts_distant():
    cache, policy = _cache()
    cache.fill(_info(0, type_=WRITEBACK), dirty=True)
    way = cache._tag_maps[0][0]
    assert policy._rrpv[0][way] == RRPV_MAX


def test_victim_prefers_saturated_rrpv():
    cache, policy = _cache(ways=2, sets=1)
    cache.fill(_info(0))
    cache.fill(_info(1))
    policy._rrpv[0][cache._tag_maps[0][1]] = RRPV_MAX
    cache.fill(_info(2))
    assert cache.probe(0) and not cache.probe(1)


def test_thrashing_workload_becomes_averse():
    """Repeatedly missing blocks in a sampled set should teach the ISVM
    a negative prediction for the offending PC."""
    cache, policy = _cache(ways=1, sets=1, sampled=1)
    pc = 0xABC
    for i in range(64):
        block = i % 3  # 3 blocks through 1 way: OPT can't hold them
        info = _info(block, pc=pc)
        hit, _ = cache.access(info)
        if not hit and not cache.decide_bypass(info):
            cache.fill(_info(block, pc=pc))
    features = policy._features(_info(0, pc=pc))
    assert policy._predict(*features) < PREDICT_THRESHOLD_HIGH


def test_never_bypasses():
    _, policy = _cache()
    assert policy.should_bypass(_info(0)) is False
