"""Unit tests for experiment-result rendering."""

import pytest

from repro.experiments.report import ExperimentResult, render, render_all


def _result():
    return ExperimentResult(
        experiment_id="figX",
        title="Demo",
        columns=["name", "value"],
        rows=[["alpha", 1.2345], ["beta", 2]],
        notes=["a note"],
    )


def test_render_contains_header_rows_and_notes():
    text = render(_result())
    assert "figX" in text
    assert "name" in text and "value" in text
    assert "alpha" in text and "1.23" in text
    assert "note: a note" in text


def test_render_aligns_columns():
    lines = render(_result()).splitlines()
    header = lines[1]
    row = lines[3]
    assert header.index("value") <= row.index("1.23") + 2


def test_column_accessor():
    result = _result()
    assert result.column("name") == ["alpha", "beta"]
    with pytest.raises(ValueError):
        result.column("missing")


def test_row_by_key():
    result = _result()
    assert result.row_by_key("beta") == ["beta", 2]
    with pytest.raises(KeyError):
        result.row_by_key("gamma")


def test_render_all_joins():
    text = render_all([_result(), _result()])
    assert text.count("== figX") == 2
