"""Tests for the parallel experiment engine (jobs, dedup, caching,
determinism) and the public experiment registry API."""

import pytest

from repro.cli import main
from repro.experiments import (
    Engine,
    ExperimentScale,
    MixSpec,
    PolicySpec,
    ResultCache,
    Runner,
    available_experiments,
    execute_job,
    get_plan,
    job_fingerprint,
    job_for,
    register_experiment,
)
from repro.experiments.figures import fig6_plan, fig10_plan, tab3_plan
from repro.experiments.registry import EXPERIMENTS, PLANS

TINY = ExperimentScale(
    machine_scale=1 / 64,
    accesses_per_core=350,
    warmup_per_core=80,
    workload_limit=2,
    hetero_mixes=2,
)

MICRO = ExperimentScale(
    machine_scale=1 / 64,
    accesses_per_core=200,
    warmup_per_core=40,
    workload_limit=1,
    hetero_mixes=2,
)


def _job(scale=MICRO, policy="lru", name="hmmer06", cores=2, prefetch="nl_stride"):
    return job_for(scale, MixSpec.homogeneous(name, cores), policy, prefetch=prefetch)


# --- determinism -------------------------------------------------------------


def test_fig6_bit_identical_serial_vs_parallel():
    serial = Engine(workers=1).run_plan(fig6_plan(TINY))
    parallel = Engine(workers=2).run_plan(fig6_plan(TINY))
    assert serial == parallel


def test_fig10_bit_identical_serial_vs_parallel():
    serial = Engine(workers=1).run_plan(fig10_plan(TINY))
    parallel = Engine(workers=2).run_plan(fig10_plan(TINY))
    assert serial == parallel


def test_execute_job_is_pure():
    job = _job()
    first = execute_job(job)
    second = execute_job(job)
    assert first.ipcs == second.ipcs
    assert first.llc_stats == second.llc_stats


# --- dedup + memo -----------------------------------------------------------


def test_engine_dedups_identical_jobs():
    engine = Engine(workers=1)
    job = _job()
    results = engine.run_jobs([job, job, job])
    assert len(results) == 1
    assert engine.stats.executed == 1


def test_engine_memoizes_across_plans():
    engine = Engine(workers=1)
    engine.run_plan(fig6_plan(TINY))
    executed_after_fig6 = engine.stats.executed
    engine.run_plan(fig6_plan(TINY))  # every job already memoized
    assert engine.stats.executed == executed_after_fig6
    assert engine.stats.memo_hits >= executed_after_fig6


def test_figures_share_suite_jobs():
    from repro.experiments.figures import fig7_plan, fig8_plan, fig9_plan

    assert set(fig6_plan(TINY).jobs) == set(fig7_plan(TINY).jobs)
    assert set(fig6_plan(TINY).jobs) == set(fig8_plan(TINY).jobs)
    assert set(fig6_plan(TINY).jobs) == set(fig9_plan(TINY).jobs)


# --- on-disk result cache ----------------------------------------------------


def test_result_cache_roundtrip(tmp_path):
    cache = ResultCache(tmp_path)
    job = _job()
    assert cache.get(job) is None
    result = execute_job(job)
    cache.put(job, result)
    replay = cache.get(job)
    assert replay is not None
    assert replay.ipcs == result.ipcs


def test_warm_cache_executes_zero_simulations(tmp_path):
    cold = Engine(workers=1, cache_dir=str(tmp_path))
    cold_result = cold.run_plan(fig6_plan(MICRO))
    assert cold.stats.executed > 0

    warm = Engine(workers=1, cache_dir=str(tmp_path))
    warm_result = warm.run_plan(fig6_plan(MICRO))
    assert warm.stats.executed == 0
    assert warm.stats.disk_hits == cold.stats.executed
    assert warm_result == cold_result


def test_cache_invalidated_on_spec_change(tmp_path):
    engine = Engine(workers=1, cache_dir=str(tmp_path))
    engine.run_jobs([_job()])
    assert engine.stats.executed == 1

    # Any spec change (here: run length) keys a different cache entry.
    changed = Engine(workers=1, cache_dir=str(tmp_path))
    changed.run_jobs([_job(scale=MICRO.with_overrides(accesses_per_core=201))])
    assert changed.stats.executed == 1
    assert changed.stats.disk_hits == 0


def test_fingerprint_sensitive_to_every_field():
    base = _job()
    variants = [
        _job(policy="chrome"),
        _job(name="mcf06"),
        _job(cores=4),
        _job(prefetch="none"),
        _job(scale=MICRO.with_overrides(machine_scale=1 / 32)),
        _job(scale=MICRO.with_overrides(warmup_per_core=41)),
    ]
    fingerprints = {job_fingerprint(j) for j in [base, *variants]}
    assert len(fingerprints) == len(variants) + 1


def test_fingerprint_sensitive_to_code_version():
    job = _job()
    assert job_fingerprint(job, "1") != job_fingerprint(job, "2")


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    job = _job()
    cache.path(job).write_bytes(b"not a pickle")
    assert cache.get(job) is None


def test_corrupt_cache_entry_is_deleted_and_reexecuted(tmp_path):
    """A garbage cache file (truncated write, disk hiccup) must be
    treated as a miss: the engine re-executes the job and replaces the
    entry with a valid one."""
    seed_engine = Engine(workers=1, cache_dir=str(tmp_path))
    job = _job()
    good = seed_engine.run_jobs([job])[job]

    cache = ResultCache(tmp_path)
    # Truncated pickle: the first bytes of a valid entry.
    cache.path(job).write_bytes(cache.path(job).read_bytes()[:20])

    engine = Engine(workers=1, cache_dir=str(tmp_path))
    recovered = engine.run_jobs([job])[job]
    assert engine.stats.executed == 1  # re-ran, didn't trust the garbage
    assert engine.stats.disk_hits == 0
    assert recovered.ipcs == good.ipcs
    # ...and the entry was healed on disk.
    healed = ResultCache(tmp_path).get(job)
    assert healed is not None and healed.ipcs == good.ipcs


def test_cache_prune_removes_oldest_entries(tmp_path):
    import os
    import time

    cache = ResultCache(tmp_path)
    jobs = [_job(scale=MICRO.with_overrides(accesses_per_core=200 + i)) for i in range(4)]
    result = execute_job(jobs[0])  # representative payload; content is irrelevant
    for i, job in enumerate(jobs):
        cache.put(job, result)
        # mtimes must be distinct for a deterministic eviction order
        os.utime(cache.path(job), (time.time() - 100 + i, time.time() - 100 + i))

    assert cache.prune(2) == 2
    assert len(cache) == 2
    assert cache.get(jobs[0]) is None and cache.get(jobs[1]) is None
    assert cache.get(jobs[2]) is not None and cache.get(jobs[3]) is not None


def test_cache_prune_deterministic_on_mtime_ties(tmp_path):
    """Coarse-timestamp filesystems give same-tick entries identical
    mtimes; prune must still evict a deterministic set (filename
    tiebreak), not whatever order glob() happens to return."""
    import os

    cache = ResultCache(tmp_path)
    jobs = [_job(scale=MICRO.with_overrides(accesses_per_core=200 + i)) for i in range(5)]
    result = execute_job(jobs[0])
    for job in jobs:
        cache.put(job, result)
        os.utime(cache.path(job), (1_000_000_000, 1_000_000_000))  # all tied

    survivors_by_name = sorted(p.name for p in tmp_path.glob("*.pkl"))[2:]
    assert cache.prune(3) == 2
    assert sorted(p.name for p in tmp_path.glob("*.pkl")) == survivors_by_name

    # a second cache directory with the same tied entries prunes the
    # same way — the choice is a function of the entries, not the scan
    other = ResultCache(tmp_path / "replica")
    for job in jobs:
        other.put(job, result)
        os.utime(other.path(job), (1_000_000_000, 1_000_000_000))
    assert other.prune(3) == 2
    assert sorted(p.name for p in (tmp_path / "replica").glob("*.pkl")) == survivors_by_name


def test_cache_prune_noop_when_under_limit(tmp_path):
    cache = ResultCache(tmp_path)
    job = _job()
    cache.put(job, execute_job(job))
    assert cache.prune(10) == 0
    assert len(cache) == 1
    assert cache.prune(0) == 1  # prune everything is legal
    assert len(cache) == 0


def test_cache_prune_rejects_negative_limit(tmp_path):
    with pytest.raises(ValueError):
        ResultCache(tmp_path).prune(-1)


# --- job specs ---------------------------------------------------------------


def test_policy_spec_builds_fresh_instances():
    spec = PolicySpec.named("chrome")
    a = spec.build(1 / 64)
    b = spec.build(1 / 64)
    assert a is not b  # jobs never share mutable policy state


def test_chrome_variant_scales_sampled_sets():
    from repro.experiments.runner import scaled_sampled_sets

    policy = PolicySpec.chrome_variant(eq_fifo_size=12).build(1 / 16)
    assert policy.config.eq_fifo_size == 12
    assert policy.config.sampled_sets == scaled_sampled_sets(1 / 16)


def test_unknown_policy_factory_errors():
    with pytest.raises(KeyError):
        PolicySpec(factory="nope").build(1.0)


def test_analytic_plans_have_no_jobs():
    plan = tab3_plan(TINY)
    assert plan.jobs == ()
    assert plan.assemble({}).row_by_key("total")[1] == 92.7


# --- registry ----------------------------------------------------------------


def test_ablations_registered_eagerly():
    ids = available_experiments()
    assert "abl_bypass" in ids and "extended_baselines" in ids
    assert "fig6" in ids and "tab7" in ids


def test_every_paper_figure_has_a_plan():
    for experiment_id in EXPERIMENTS:
        if experiment_id.startswith(("fig", "tab")):
            assert get_plan(experiment_id) is not None, experiment_id


def test_register_experiment_roundtrip():
    marker = object()

    def custom(runner):
        return marker

    register_experiment("custom_test_exp", custom)
    try:
        assert "custom_test_exp" in available_experiments()
        from repro.experiments import run_experiment

        assert run_experiment("custom_test_exp", Runner(MICRO)) is marker
    finally:
        EXPERIMENTS.pop("custom_test_exp", None)
        PLANS.pop("custom_test_exp", None)


# --- runner/engine sharing ---------------------------------------------------


def test_runner_baseline_goes_through_engine():
    runner = Runner(MICRO)
    key, traces = runner.make_homogeneous("hmmer06", 2)
    runner.baseline(key, traces)
    assert runner.engine.stats.executed == 1
    # The figure plan for the same (mix, lru) job is now a memo hit.
    job = job_for(MICRO, MixSpec.homogeneous("hmmer06", 2), "lru")
    runner.engine.run_jobs([job])
    assert runner.engine.stats.memo_hits == 1


def test_limit_workloads_even_spread_includes_first():
    scale = ExperimentScale(workload_limit=4)
    names = [f"w{i}" for i in range(10)]
    limited = scale.limit_workloads(names)
    assert len(limited) == 4
    assert limited[0] == "w0"
    assert limited == sorted(limited, key=names.index)  # preserves order
    assert len(set(limited)) == 4


def test_limit_workloads_cap_above_length_keeps_all():
    scale = ExperimentScale(workload_limit=99)
    names = ["a", "b", "c"]
    assert scale.limit_workloads(names) == names


# --- CLI ---------------------------------------------------------------------


def test_cli_run_fig6_parallel_smoke(capsys):
    code = main(
        [
            "run",
            "fig6",
            "--jobs",
            "2",
            "--quiet",
            "--scale",
            str(1 / 64),
            "--accesses",
            "250",
            "--warmup",
            "50",
            "--workloads",
            "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "geomean" in out


def test_cli_cache_dir_warm_rerun(tmp_path, capsys):
    argv = [
        "run",
        "fig15",
        "--jobs",
        "1",
        "--cache-dir",
        str(tmp_path),
        "--scale",
        str(1 / 64),
        "--accesses",
        "200",
        "--warmup",
        "40",
        "--workloads",
        "1",
    ]
    assert main(argv) == 0
    first = capsys.readouterr()
    assert main(argv) == 0
    second = capsys.readouterr()
    assert second.out.split("[fig15 took")[0] == first.out.split("[fig15 took")[0]
    assert "0 simulated" in second.err


def test_cli_rejects_bad_jobs(capsys):
    assert main(["run", "fig6", "--jobs", "0"]) == 2
    assert "--jobs" in capsys.readouterr().err
