"""Unit tests for the OPTgen oracle and sampled-set selection."""

from repro.sim.replacement.optgen import OPTgen, choose_sampled_sets


def _hits(verdicts):
    return [v for v in verdicts if v[0]]


def test_cold_access_returns_no_verdicts():
    gen = OPTgen(cache_ways=2)
    assert gen.access(0x1, pc=1, is_prefetch=False) == []


def test_rereference_within_capacity_is_opt_hit():
    gen = OPTgen(cache_ways=2)
    gen.access(0xA, pc=1, is_prefetch=False)
    verdicts = gen.access(0xA, pc=2, is_prefetch=False)
    assert len(verdicts) == 1
    opt_hit, train_pc, was_prefetch, addr = verdicts[0]
    assert opt_hit
    assert train_pc == 1  # trains the PC of the *previous* access
    assert not was_prefetch
    assert addr == 0xA


def test_capacity_pressure_produces_opt_miss():
    """With 1 way, interleaving a second block forces an OPT miss."""
    gen = OPTgen(cache_ways=1)
    gen.access(0xA, pc=1, is_prefetch=False)
    gen.access(0xB, pc=2, is_prefetch=False)
    assert gen.access(0xB, pc=3, is_prefetch=False)[0][0]
    verdict = gen.access(0xA, pc=4, is_prefetch=False)[0]
    assert not verdict[0]  # interval [t_A, now) includes B's occupied quantum


def test_two_way_set_holds_two_live_blocks():
    gen = OPTgen(cache_ways=2)
    gen.access(0xA, pc=1, is_prefetch=False)
    gen.access(0xB, pc=2, is_prefetch=False)
    assert gen.access(0xA, pc=3, is_prefetch=False)[0][0]
    assert gen.access(0xB, pc=4, is_prefetch=False)[0][0]
    assert gen.opt_hit_rate == 1.0


def test_timeout_emits_miss_verdict():
    """A single-use block ages out of the window and trains as an OPT
    miss — the path that detrains streaming PCs."""
    gen = OPTgen(cache_ways=1, history_quanta=4)
    gen.access(0xA, pc=77, is_prefetch=False)
    timeout_verdicts = []
    for i in range(6):
        for v in gen.access(0x100 + i, pc=2, is_prefetch=False):
            if v[3] == 0xA:
                timeout_verdicts.append(v)
    assert len(timeout_verdicts) == 1
    opt_hit, pc, was_prefetch, addr = timeout_verdicts[0]
    assert not opt_hit and pc == 77 and addr == 0xA


def test_out_of_window_reuse_counts_one_miss():
    gen = OPTgen(cache_ways=1, history_quanta=4)
    gen.access(0xA, pc=1, is_prefetch=False)
    for i in range(5):
        gen.access(0x100 + i, pc=2, is_prefetch=False)
    misses_before = gen.opt_misses
    gen.access(0xA, pc=3, is_prefetch=False)
    # The timeout already trained 0xA; the re-access is cold, so no
    # second verdict for it.
    assert all(v[3] != 0xA for v in gen.access(0x200, pc=4, is_prefetch=False))
    assert gen.opt_misses >= misses_before


def test_tracker_memory_bounded_by_window():
    gen = OPTgen(cache_ways=4, history_quanta=16)
    for i in range(1000):
        gen.access(i, pc=1, is_prefetch=False)
    assert gen.tracked <= 17


def test_prefetch_flag_propagates():
    gen = OPTgen(cache_ways=2)
    gen.access(0xA, pc=1, is_prefetch=True)
    verdict = gen.access(0xA, pc=2, is_prefetch=False)[0]
    assert verdict[2] is True  # previous access was a prefetch


def test_choose_sampled_sets_count_and_range():
    sets = choose_sampled_sets(2048, target=64)
    assert len(sets) == 64
    assert all(0 <= s < 2048 for s in sets)


def test_choose_sampled_sets_small_cache_takes_all():
    assert choose_sampled_sets(16, target=64) == set(range(16))


def test_choose_sampled_sets_zero_target():
    assert choose_sampled_sets(64, target=0) == set()


def test_choose_sampled_sets_deterministic():
    assert choose_sampled_sets(1024) == choose_sampled_sets(1024)
