"""Unit tests for address arithmetic helpers."""

import pytest

from repro.sim.address import (
    BLOCK_SIZE,
    PAGE_SIZE,
    block_address,
    block_offset,
    fold_hash,
    is_power_of_two,
    mix_hash,
    page_number,
    page_offset,
    set_index,
    tag_of,
)


def test_block_address_strips_offset():
    assert block_address(0) == 0
    assert block_address(63) == 0
    assert block_address(64) == 1
    assert block_address(0x1234) == 0x1234 >> 6


def test_block_offset_range():
    for addr in (0, 1, 63, 64, 65, 1000):
        assert 0 <= block_offset(addr) < BLOCK_SIZE
    assert block_offset(63) == 63
    assert block_offset(64) == 0


def test_page_number_and_offset_recompose():
    addr = 0xDEADBEEF
    assert page_number(addr) * PAGE_SIZE + page_offset(addr) == addr


def test_set_index_wraps_power_of_two():
    assert set_index(0, 16) == 0
    assert set_index(15, 16) == 15
    assert set_index(16, 16) == 0
    assert set_index(17, 16) == 1


def test_tag_and_set_recompose_block_address():
    num_sets = 64
    for block in (0, 1, 63, 64, 12345, 999999):
        s = set_index(block, num_sets)
        t = tag_of(block, num_sets)
        assert t * num_sets + s == block


def test_mix_hash_deterministic_and_64bit():
    assert mix_hash(12345) == mix_hash(12345)
    assert 0 <= mix_hash(12345) < (1 << 64)
    assert mix_hash(1) != mix_hash(2)


def test_mix_hash_avalanche():
    # Flipping one input bit should change many output bits.
    a, b = mix_hash(0x1000), mix_hash(0x1001)
    assert bin(a ^ b).count("1") > 16


def test_fold_hash_respects_bit_width():
    for bits in (1, 4, 9, 16, 17):
        for value in (0, 1, 0xFFFF, 123456789):
            assert 0 <= fold_hash(value, bits) < (1 << bits)


def test_fold_hash_distributes():
    buckets = {fold_hash(i, 4) for i in range(256)}
    assert len(buckets) == 16  # all 16 buckets hit over 256 inputs


def test_is_power_of_two():
    assert is_power_of_two(1)
    assert is_power_of_two(64)
    assert not is_power_of_two(0)
    assert not is_power_of_two(48)
    assert not is_power_of_two(-4)
