"""Unit tests for the statistics containers and their derived metrics."""

from repro.sim.stats import CacheStats, LLCManagementStats, PrefetcherStats


def test_cache_stats_record_by_type():
    stats = CacheStats()
    stats.record("demand", True)
    stats.record("demand", False)
    stats.record("prefetch", True)
    stats.record("writeback", False)
    assert stats.demand_hits == 1
    assert stats.demand_misses == 1
    assert stats.prefetch_hits == 1
    assert stats.writeback_misses == 1
    assert stats.demand_accesses == 2
    assert stats.demand_miss_ratio == 0.5


def test_demand_miss_ratio_empty_is_zero():
    assert CacheStats().demand_miss_ratio == 0.0


def test_ephr_counts_prefetched_blocks_hit():
    mgmt = LLCManagementStats()
    for _ in range(4):
        mgmt.on_fill(is_prefetch=True)
    mgmt.on_fill(is_prefetch=False)
    mgmt.on_prefetched_block_hit()
    assert mgmt.prefetch_fills == 4
    assert mgmt.ephr == 0.25


def test_bypass_coverage_and_efficiency():
    mgmt = LLCManagementStats()
    mgmt.on_fill(is_prefetch=False)
    mgmt.on_bypass(0x10)
    mgmt.on_bypass(0x20)
    assert mgmt.incoming_blocks == 3
    assert abs(mgmt.bypass_coverage - 2 / 3) < 1e-12
    # 0x10 is demanded later: that bypass was a mistake.
    mgmt.on_demand_request(0x10)
    assert mgmt.bypass_mistakes == 1
    assert mgmt.bypass_efficiency == 0.5


def test_bypass_efficiency_empty():
    assert LLCManagementStats().bypass_efficiency == 0.0


def test_unused_eviction_fractions():
    mgmt = LLCManagementStats()
    mgmt.on_eviction(0x1, reused=False, was_prefetch=True)
    mgmt.on_eviction(0x2, reused=False, was_prefetch=False)
    mgmt.on_eviction(0x3, reused=True, was_prefetch=False)
    assert abs(mgmt.unused_eviction_fraction - 2 / 3) < 1e-12
    assert mgmt.unused_eviction_prefetch_fraction == 0.5


def test_unused_requested_again():
    mgmt = LLCManagementStats()
    mgmt.on_eviction(0x1, reused=False, was_prefetch=False)
    mgmt.on_eviction(0x2, reused=False, was_prefetch=False)
    mgmt.on_demand_request(0x1)
    assert mgmt.unused_requested_again == 1
    assert mgmt.unused_requested_again_fraction == 0.5
    # A second request for the same block does not double-count.
    mgmt.on_demand_request(0x1)
    assert mgmt.unused_requested_again == 1


def test_repeated_unused_eviction_same_block_counts_twice():
    mgmt = LLCManagementStats()
    mgmt.on_eviction(0x1, reused=False, was_prefetch=False)
    mgmt.on_eviction(0x1, reused=False, was_prefetch=False)
    mgmt.on_demand_request(0x1)
    assert mgmt.unused_requested_again == 2


def test_prefetcher_stats_accuracy():
    stats = PrefetcherStats()
    assert stats.accuracy == 0.0
    stats.issued = 10
    stats.useful = 3
    assert stats.accuracy == 0.3
