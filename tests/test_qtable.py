"""Unit tests for the feature-sliced Q-table (Sec. V-C)."""

import pytest

from repro.core.config import ChromeConfig, NUM_ACTIONS
from repro.core.qtable import QTable


def _qtable(**overrides):
    from dataclasses import replace

    config = replace(ChromeConfig(), **overrides) if overrides else ChromeConfig()
    return QTable(num_features=2, config=config), config


def test_initial_q_is_optimistic():
    qt, cfg = _qtable()
    values = qt.q_values((123, 456))
    for v in values:
        assert v == pytest.approx(cfg.optimistic_q, abs=0.1)


def test_lookup_counts():
    qt, _ = _qtable()
    qt.q_values((1, 2))
    qt.q((1, 2), 0)
    assert qt.lookups == 2


def test_apply_delta_moves_q():
    qt, _ = _qtable()
    before = qt.q((1, 2), 3)
    qt.apply_delta((1, 2), 3, +2.0)
    after = qt.q((1, 2), 3)
    assert after == pytest.approx(before + 2.0, abs=0.1)


def test_delta_does_not_leak_to_other_actions():
    qt, _ = _qtable()
    before = qt.q_values((1, 2))
    qt.apply_delta((1, 2), 0, +4.0)
    after = qt.q_values((1, 2))
    assert after[0] > before[0]
    for a in range(1, NUM_ACTIONS):
        assert after[a] == pytest.approx(before[a], abs=1e-9)


def test_max_over_features():
    """Q(S,A) is the max of the per-feature Q-values (Sec. V-C)."""
    qt, _ = _qtable()
    # Boost feature 0's entry only; a state sharing feature 0 benefits.
    qt.apply_delta((100, 200), 1, +5.0)
    boosted = qt.q((100, 999), 1)  # same feature-0 value, unrelated feature-1
    baseline = qt.q((101, 999), 1)
    assert boosted > baseline


def test_quantization_to_fixed_point_grid():
    qt, cfg = _qtable()
    qt.apply_delta((1, 2), 0, 0.001)  # below one quantum per sub-table
    value = qt.q((1, 2), 0)
    quantum = 1.0 / (1 << cfg.q_fixed_point_fraction_bits)
    # Sum of 4 sub-table values, each on the grid.
    assert (value / (quantum / 1)) == pytest.approx(round(value / quantum), abs=1e-6)


def test_clamping_bounds_q_values():
    qt, cfg = _qtable()
    for _ in range(100):
        qt.apply_delta((1, 2), 0, 1e9)
    limit = (1 << (cfg.q_value_bits - 1)) / (1 << cfg.q_fixed_point_fraction_bits)
    assert qt.q((1, 2), 0) <= cfg.num_subtables * limit
    for _ in range(100):
        qt.apply_delta((1, 2), 0, -1e9)
    assert qt.q((1, 2), 0) >= -cfg.num_subtables * limit


def test_best_action_respects_legal_set():
    qt, _ = _qtable()
    qt.apply_delta((1, 2), 0, +10.0)  # action 0 is best overall
    assert qt.best_action((1, 2), legal=(0, 1, 2, 3)) == 0
    assert qt.best_action((1, 2), legal=(1, 2, 3)) in (1, 2, 3)


def test_best_action_tie_break_fixed_order():
    qt, _ = _qtable()
    assert qt.best_action((5, 6), legal=(1, 2, 3)) == 1  # all equal -> first


def test_storage_bits_matches_table_iii():
    qt, cfg = _qtable()
    # 2 features x 4 sub-tables x 2048 entries x 16 bits = 32KB
    assert qt.storage_bits() == 2 * 4 * 2048 * 16
    assert qt.storage_bits() / 8 / 1024 == 32.0


def test_rows_per_subtable_power_of_two():
    qt, cfg = _qtable()
    assert qt.rows == cfg.subtable_entries // NUM_ACTIONS == 512


def test_row_index_cache_consistency():
    qt, _ = _qtable()
    first = qt._row_indices(0xABCD)
    second = qt._row_indices(0xABCD)
    assert first == second
    assert all(0 <= r < qt.rows for r in first)


def test_different_subtables_use_different_hashes():
    qt, _ = _qtable()
    rows = qt._row_indices(0x1234)
    assert len(set(rows)) > 1  # overwhelmingly likely with 4 hashes over 512 rows


def test_snapshot_stats_fields():
    qt, _ = _qtable()
    qt.apply_delta((1, 2), 0, 1.0)
    stats = qt.snapshot_stats()
    assert stats["updates"] == 1
    assert stats["q_min"] <= stats["q_mean"] <= stats["q_max"]


def test_too_many_subtables_rejected():
    from dataclasses import replace

    with pytest.raises(ValueError):
        QTable(2, replace(ChromeConfig(), num_subtables=9))
