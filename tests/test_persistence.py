"""Agent persistence: QTable state_dict and save/restore warm starts.

The contract under test: a snapshot written by ``save`` and read by
``restore`` reproduces the learned state *bit-identically* (Python
floats round-trip exactly through JSON), restores are geometry- and
kind-checked, and a restored agent continues deterministically — two
agents restored from the same snapshot and fed the same stream stay
bit-identical forever.
"""

from dataclasses import replace

import pytest

from repro.core.chrome import ChromePolicy
from repro.core.config import MISS_ACTIONS, ChromeConfig
from repro.core.persistence import agent_state, load_agent_state
from repro.core.qtable import QTable
from repro.serve.agent import ServeAgent
from repro.serve.workloads import build_workload
from repro.sim.multicore import MultiCoreSystem, SystemConfig
from repro.traces.mixes import heterogeneous_mix

SCALE = 1 / 64


def _trained_qtable(seed: int = 0, updates: int = 400) -> QTable:
    import random

    config = ChromeConfig()
    table = QTable(2, config)
    rng = random.Random(seed)
    for _ in range(updates):
        state = (rng.randrange(1 << 17), rng.randrange(1 << 16))
        action = MISS_ACTIONS[rng.randrange(len(MISS_ACTIONS))]
        table.apply_delta(state, action, rng.uniform(-2.0, 2.0))
    return table


def _trained_llc_policy(config: ChromeConfig) -> ChromePolicy:
    policy = ChromePolicy(config)
    system = MultiCoreSystem(
        SystemConfig(num_cores=2, scale=SCALE), llc_policy=policy
    )
    traces = heterogeneous_mix(["mcf06", "libquantum06"], 900, seed=7, scale=SCALE)
    system.run(traces, max_accesses_per_core=900)
    return policy


def _drive_serve_agent(agent: ServeAgent, requests, hits_every: int = 3):
    """Feed a fixed request stream straight into the decision pipeline."""
    decisions = []
    for i, req in enumerate(requests):
        seg_idx = req.key % 64
        decisions.append(agent.decide(req, seg_idx, hit=(i % hits_every == 0)))
    return decisions


# --- QTable.state_dict round trip --------------------------------------------


def test_qtable_state_dict_roundtrip_bit_identical():
    table = _trained_qtable()
    clone = QTable(2, ChromeConfig())
    clone.load_state_dict(table.state_dict())
    assert clone.state_dict() == table.state_dict()
    # Spot-check q() agreement on fresh states too (hash paths intact).
    for state in [(0, 0), (123, 456), ((1 << 17) - 1, (1 << 16) - 1)]:
        for action in range(4):
            assert clone.q(state, action) == table.q(state, action)


def test_qtable_state_dict_json_safe():
    import json

    table = _trained_qtable(seed=3)
    via_json = json.loads(json.dumps(table.state_dict()))
    clone = QTable(2, ChromeConfig())
    clone.load_state_dict(via_json)
    assert clone.state_dict() == table.state_dict()


def test_qtable_load_rebuilds_row_caches():
    table = _trained_qtable(seed=1)
    clone = QTable(2, ChromeConfig())
    state = (42, 43)
    clone.q(state, 1)  # populate the memoized row cache pre-load
    clone.load_state_dict(table.state_dict())
    assert clone.q(state, 1) == table.q(state, 1)
    # Post-load updates must not leak back into the source table.
    clone.apply_delta(state, 1, 1.0)
    assert clone.q(state, 1) != table.q(state, 1)


def test_qtable_load_rejects_geometry_mismatch():
    table = _trained_qtable()
    other = QTable(3, ChromeConfig())
    with pytest.raises(ValueError, match="geometry"):
        other.load_state_dict(table.state_dict())
    small = QTable(2, replace(ChromeConfig(), num_subtables=2))
    with pytest.raises(ValueError, match="geometry"):
        small.load_state_dict(table.state_dict())


def test_qtable_load_rejects_unknown_version():
    table = QTable(2, ChromeConfig())
    state = table.state_dict()
    state["version"] = 99
    with pytest.raises(ValueError, match="version"):
        table.load_state_dict(state)


# --- LLC agent save/restore ---------------------------------------------------


def test_chrome_policy_save_restore_bit_identical(tmp_path):
    config = replace(ChromeConfig(), sampled_sets=8, eq_fifo_size=8)
    trained = _trained_llc_policy(config)
    assert trained.qtable.updates > 0  # the run actually trained
    path = tmp_path / "llc_agent.json"
    trained.save(path)

    fresh = ChromePolicy(config)
    fresh.restore(path)
    assert fresh.qtable.state_dict() == trained.qtable.state_dict()
    assert fresh._rng.getstate() == trained._rng.getstate()


def test_chrome_policy_restore_rejects_serve_snapshot(tmp_path):
    agent = ServeAgent(seed=1)
    path = tmp_path / "serve_agent.json"
    agent.save(path)
    with pytest.raises(ValueError, match="kind"):
        ChromePolicy(ChromeConfig()).restore(path)


def test_restore_rejects_config_mismatch():
    agent = ServeAgent(seed=1)
    state = agent_state(agent, kind="serve-agent")
    other = ServeAgent(replace(ChromeConfig(), alpha=0.999), seed=1)
    with pytest.raises(ValueError, match="config mismatch"):
        load_agent_state(other, state, kind="serve-agent")


# --- serve agent save/restore + deterministic continuation --------------------


def test_serve_agent_save_restore_bit_identical(tmp_path):
    requests = build_workload("zipf_scan", 1200, seed=11)
    agent = ServeAgent(seed=5)
    agent.attach(128)
    _drive_serve_agent(agent, requests)
    assert agent.qtable.updates > 0
    path = tmp_path / "serve_agent.json"
    agent.save(path)

    restored = ServeAgent(seed=999)  # different seed: state must come from disk
    restored.attach(128)
    restored.restore(path)
    assert restored.qtable.state_dict() == agent.qtable.state_dict()
    assert restored._rng.getstate() == agent._rng.getstate()


def test_serve_agent_restored_continuation_is_deterministic(tmp_path):
    """Restoring a snapshot twice and replaying the same stream gives
    bit-identical decisions and learned state (the warm-start
    guarantee CI smokes end-to-end)."""
    warm = build_workload("zipf_scan", 800, seed=21)
    cont = build_workload("zipf_scan", 800, seed=22)

    agent = ServeAgent(seed=13)
    agent.attach(128)
    _drive_serve_agent(agent, warm)
    path = tmp_path / "warm.json"
    agent.save(path)

    runs = []
    for _ in range(2):
        resumed = ServeAgent(seed=13)
        resumed.attach(128)
        resumed.restore(path)
        decisions = _drive_serve_agent(resumed, cont)
        runs.append((decisions, resumed.qtable.state_dict()))
    assert runs[0] == runs[1]
    # And the continuation genuinely trained beyond the snapshot.
    assert runs[0][1]["updates"] > agent.qtable.updates


def test_save_is_atomic_no_tmp_left_behind(tmp_path):
    agent = ServeAgent(seed=2)
    path = tmp_path / "snap.json"
    agent.save(path)
    assert path.exists()
    assert list(tmp_path.glob("*.tmp")) == []


# --- fixed-point grid validation on load --------------------------------------


def test_load_rejects_off_grid_qvalues():
    """A snapshot whose Q-values do not sit on the live fixed-point
    lattice must be refused with a clear error, not loaded silently
    (the scalar table would accept and then drift off-grid forever)."""
    agent = ServeAgent(seed=1)
    state = agent_state(agent, kind="serve-agent")
    state["qtable"]["tables"][0][0][0][0] = 0.1  # not a multiple of 2^-8
    fresh = ServeAgent(seed=1)
    with pytest.raises(ValueError, match="off the live fixed-point grid"):
        load_agent_state(fresh, state, kind="serve-agent")


def test_load_rejects_qvalues_beyond_clamp():
    agent = ServeAgent(seed=1)
    state = agent_state(agent, kind="serve-agent")
    config = agent.config
    quantum = 1.0 / (1 << config.q_fixed_point_fraction_bits)
    limit = (1 << (config.q_value_bits - 1)) * quantum
    # On-grid but one quantum past the clamp ceiling.
    state["qtable"]["tables"][0][0][0][0] = limit
    fresh = ServeAgent(seed=1)
    with pytest.raises(ValueError, match="exceeds the live clamp"):
        load_agent_state(fresh, state, kind="serve-agent")


def test_load_accepts_on_grid_snapshot_unchanged():
    agent = ServeAgent(seed=3)
    agent.attach(128)
    _drive_serve_agent(agent, build_workload("zipf_scan", 600, seed=9))
    state = agent_state(agent, kind="serve-agent")
    fresh = ServeAgent(seed=3)
    fresh.attach(128)
    load_agent_state(fresh, state, kind="serve-agent")
    assert fresh.qtable.state_dict() == agent.qtable.state_dict()
