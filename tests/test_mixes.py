"""Unit tests for multi-programmed mix construction."""

from repro.traces.mixes import (
    ADDRESS_SPACE_STRIDE,
    heterogeneous_mix,
    homogeneous_mix,
    random_mix_names,
)
from repro.traces.spec import ALL_SPEC_WORKLOADS


def test_homogeneous_mix_one_trace_per_core():
    mix = homogeneous_mix("hmmer06", 4, 100, scale=1 / 64)
    assert len(mix) == 4


def test_homogeneous_copies_are_address_disjoint():
    mix = homogeneous_mix("hmmer06", 2, 200, scale=1 / 64)
    blocks0 = {r.address >> 6 for r in mix[0]}
    blocks1 = {r.address >> 6 for r in mix[1]}
    assert not (blocks0 & blocks1)


def test_homogeneous_copies_have_identical_relative_streams():
    mix = homogeneous_mix("hmmer06", 2, 150, scale=1 / 64)
    rel0 = [r.address - ADDRESS_SPACE_STRIDE for r in mix[0]]
    rel1 = [r.address - 2 * ADDRESS_SPACE_STRIDE for r in mix[1]]
    assert rel0 == rel1


def test_heterogeneous_mix_runs_distinct_workloads():
    mix = heterogeneous_mix(["hmmer06", "libquantum06"], 100, scale=1 / 64)
    assert len(mix) == 2
    pcs0 = {r.pc for r in mix[0]}
    pcs1 = {r.pc for r in mix[1]}
    assert pcs0 != pcs1


def test_heterogeneous_cores_address_disjoint():
    mix = heterogeneous_mix(["hmmer06", "hmmer06"], 100, scale=1 / 64)
    blocks0 = {r.address >> 6 for r in mix[0]}
    blocks1 = {r.address >> 6 for r in mix[1]}
    assert not (blocks0 & blocks1)


def test_random_mix_names_reproducible():
    a = random_mix_names(10, 4, seed=42)
    b = random_mix_names(10, 4, seed=42)
    assert a == b
    assert len(a) == 10
    assert all(len(names) == 4 for names in a)


def test_random_mix_names_draw_from_pool():
    mixes = random_mix_names(20, 8)
    for names in mixes:
        assert all(n in ALL_SPEC_WORKLOADS for n in names)


def test_random_mix_names_custom_pool():
    mixes = random_mix_names(5, 2, pool=["bfs-ur"], seed=1)
    assert all(names == ("bfs-ur", "bfs-ur") for names in mixes)
