"""Unit tests for multi-programmed mix construction.

Beyond the generic homogeneous/heterogeneous plumbing, this module
enforces the Kill-Llama mix ladder's published contract — aggregate
LLC MPKI rises monotonically from mix1 to mix7 — under the tiny sim
config, and pins that STREAM kernel mixes decode through the numpy
backend's columnar chunk path bit-identically to the scalar walk.
"""

import pytest

from repro.traces.mixes import (
    ADDRESS_SPACE_STRIDE,
    KILL_LLAMA_APP_MAP,
    KILL_LLAMA_MIX_NAMES,
    KILL_LLAMA_MIXES,
    STREAM_KERNELS,
    build_stream_trace,
    heterogeneous_mix,
    homogeneous_mix,
    kill_llama_apps,
    kill_llama_mix,
    random_mix_names,
)
from repro.traces.spec import ALL_SPEC_WORKLOADS


def test_homogeneous_mix_one_trace_per_core():
    mix = homogeneous_mix("hmmer06", 4, 100, scale=1 / 64)
    assert len(mix) == 4


def test_homogeneous_copies_are_address_disjoint():
    mix = homogeneous_mix("hmmer06", 2, 200, scale=1 / 64)
    blocks0 = {r.address >> 6 for r in mix[0]}
    blocks1 = {r.address >> 6 for r in mix[1]}
    assert not (blocks0 & blocks1)


def test_homogeneous_copies_have_identical_relative_streams():
    mix = homogeneous_mix("hmmer06", 2, 150, scale=1 / 64)
    rel0 = [r.address - ADDRESS_SPACE_STRIDE for r in mix[0]]
    rel1 = [r.address - 2 * ADDRESS_SPACE_STRIDE for r in mix[1]]
    assert rel0 == rel1


def test_heterogeneous_mix_runs_distinct_workloads():
    mix = heterogeneous_mix(["hmmer06", "libquantum06"], 100, scale=1 / 64)
    assert len(mix) == 2
    pcs0 = {r.pc for r in mix[0]}
    pcs1 = {r.pc for r in mix[1]}
    assert pcs0 != pcs1


def test_heterogeneous_cores_address_disjoint():
    mix = heterogeneous_mix(["hmmer06", "hmmer06"], 100, scale=1 / 64)
    blocks0 = {r.address >> 6 for r in mix[0]}
    blocks1 = {r.address >> 6 for r in mix[1]}
    assert not (blocks0 & blocks1)


def test_random_mix_names_reproducible():
    a = random_mix_names(10, 4, seed=42)
    b = random_mix_names(10, 4, seed=42)
    assert a == b
    assert len(a) == 10
    assert all(len(names) == 4 for names in a)


def test_random_mix_names_draw_from_pool():
    mixes = random_mix_names(20, 8)
    for names in mixes:
        assert all(n in ALL_SPEC_WORKLOADS for n in names)


def test_random_mix_names_custom_pool():
    mixes = random_mix_names(5, 2, pool=["bfs-ur"], seed=1)
    assert all(names == ("bfs-ur", "bfs-ur") for names in mixes)


# --- the Kill-Llama mix ladder ------------------------------------------------


def test_kill_llama_names_are_mix1_through_mix7():
    assert KILL_LLAMA_MIX_NAMES == tuple(f"mix{i}" for i in range(1, 8))
    assert set(KILL_LLAMA_MIX_NAMES) == set(KILL_LLAMA_MIXES)


def test_kill_llama_apps_resolve_through_the_registry():
    from repro.traces.gap import GAP_TRACES

    registry = set(ALL_SPEC_WORKLOADS) | set(STREAM_KERNELS) | set(GAP_TRACES)
    for name in KILL_LLAMA_MIX_NAMES:
        apps = kill_llama_apps(name)
        assert len(apps) == 4
        assert all(app in registry for app in apps), (name, apps)


def test_kill_llama_map_covers_every_published_app():
    published = {app for apps in KILL_LLAMA_MIXES.values() for app in apps}
    assert published <= set(KILL_LLAMA_APP_MAP)


def test_kill_llama_unknown_mix_lists_names():
    with pytest.raises(KeyError) as excinfo:
        kill_llama_apps("mix9")
    assert "mix9" in str(excinfo.value)
    assert "mix1" in str(excinfo.value)


def test_kill_llama_mix_builds_four_disjoint_cores():
    traces = kill_llama_mix("mix4", 200, scale=1 / 64)
    assert len(traces) == 4
    blocks = [{r.address >> 6 for r in t} for t in traces]
    for i in range(4):
        for j in range(i + 1, 4):
            assert not (blocks[i] & blocks[j])


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_kill_llama_mpki_ladder_is_monotone(seed):
    """The published contract: aggregate LLC MPKI rises mix1 -> mix7.

    Runs the tiny sim config (4 cores at 1/64 scale, LRU LLC, 1200
    accesses per core) — the same reduced methodology every other sim
    test uses — across three mix seeds so the property is a fact about
    the calibration (STREAM gap tuples + app substitutions), not one
    lucky draw.
    """
    from repro.sim.multicore import MultiCoreSystem, SystemConfig
    from repro.sim.replacement.lru import LRUPolicy

    mpkis = []
    for name in KILL_LLAMA_MIX_NAMES:
        traces = kill_llama_mix(name, 1200, seed=seed, scale=1 / 64)
        system = MultiCoreSystem(
            SystemConfig(num_cores=4, scale=1 / 64), llc_policy=LRUPolicy()
        )
        result = system.run(traces)
        instructions = sum(core.instructions for core in result.cores)
        mpkis.append(1000.0 * result.llc_stats.demand_misses / instructions)
    assert all(a < b for a, b in zip(mpkis, mpkis[1:])), (
        f"MPKI ladder not monotone at seed {seed}: "
        + ", ".join(f"{m:.2f}" for m in mpkis)
    )


# --- STREAM kernels through the columnar numpy path ---------------------------


def test_stream_kernels_cover_the_published_four():
    assert set(STREAM_KERNELS) == {
        "stream_copy", "stream_scale", "stream_add", "stream_triad"
    }


def test_stream_trace_unknown_kernel_lists_names():
    with pytest.raises(KeyError) as excinfo:
        build_stream_trace("stream_sub", 10)
    assert "stream_sub" in str(excinfo.value)
    assert "stream_triad" in str(excinfo.value)


def test_stream_traces_are_sequential_and_reuse_free():
    trace = build_stream_trace("stream_triad", 600, seed=2, scale=1 / 64)
    reads = [r for r in trace if not r.is_write]
    writes = [r for r in trace if r.is_write]
    assert reads and writes
    # triad is (2 reads, 1 write) per element
    assert abs(len(reads) - 2 * len(writes)) <= 2


@pytest.mark.parametrize("kernel", sorted(STREAM_KERNELS))
def test_stream_columnar_decode_bit_identical(kernel):
    """The numpy backend's chunk decode must equal the scalar walk.

    ``decode_chunk`` feeds the batched multi-core run loop; for the
    bandwidth kernels (the highest record rate of any trace family)
    every derived column — block address, gap+1, the IEEE float issue
    increment — must match the scalar per-record derivation exactly,
    or the numpy backend would simulate a different machine.
    """
    np = pytest.importorskip("numpy")  # noqa: F841  (backend dependency)
    from repro.sim.address import BLOCK_BITS
    from repro.sim.batch import decode_chunk

    trace = build_stream_trace(kernel, 500, seed=3, scale=1 / 64).materialize()
    width = 4.0
    for chunk in trace.iter_chunks(chunk_size=128):
        cols = decode_chunk(chunk, width)
        assert cols is not None
        pcs, addresses, blocks, gap1s, issue_incs, writes = cols
        for i, record in enumerate(chunk):
            assert pcs[i] == record.pc
            assert addresses[i] == record.address
            assert blocks[i] == record.address >> BLOCK_BITS
            assert gap1s[i] == record.gap + 1
            assert repr(issue_incs[i]) == repr((record.gap + 1) / width)
            assert writes[i] == record.is_write
