"""Unit + property tests for :mod:`repro.cluster`: the consistent-hash
ring, hot-key detection, Q-table federation, fleet determinism under
shard kills, and the federation-beats-isolated seeded smoke."""

import json
from dataclasses import replace

import pytest

from repro.cluster import (
    ClusterJob,
    ClusterService,
    HashRing,
    HotKeyDetector,
    merge_qtable_states,
)
from repro.cluster.federate import federate_agents
from repro.serve.config import ServiceConfig
from repro.serve.service import run_configured
from repro.serve.store import ObjectStore
from repro.serve.workloads import build_workload

# --- ring ---------------------------------------------------------------------


def test_ring_is_seeded_and_deterministic():
    a = HashRing(4, replication=2, vnodes=32, seed=9)
    b = HashRing(4, replication=2, vnodes=32, seed=9)
    assert a._points == b._points
    keys = range(0, 4000, 7)
    assert [a.preference(k) for k in keys] == [b.preference(k) for k in keys]
    c = HashRing(4, replication=2, vnodes=32, seed=10)
    assert any(a.preference(k) != c.preference(k) for k in keys)


def test_ring_preference_returns_distinct_live_shards():
    ring = HashRing(5, replication=3, vnodes=16, seed=1)
    for key in range(500):
        pref = ring.preference(key)
        assert len(pref) == 3
        assert len(set(pref)) == 3
        assert pref[0] == ring.primary(key)


def test_ring_replication_clamps_to_shard_count():
    ring = HashRing(2, replication=8, vnodes=8, seed=0)
    assert ring.replication == 2
    assert len(ring.preference(123)) == 2


def test_ring_dead_shard_skips_only_affected_keys():
    ring = HashRing(4, replication=2, vnodes=64, seed=3)
    dead = 2
    live = [s != dead for s in range(4)]
    moved = unmoved = 0
    for key in range(3000):
        healthy = ring.preference(key)
        degraded = ring.preference(key, live)
        assert dead not in degraded
        if healthy[0] == dead:
            # its old first replica becomes the new primary
            assert degraded[0] == healthy[1]
            moved += 1
        else:
            # consistent hashing: keys not owned by the dead shard keep
            # their primary
            assert degraded[0] == healthy[0]
            unmoved += 1
    assert moved > 0 and unmoved > 0
    # roughly 1/4 of keys lived on the dead shard
    assert moved < unmoved


def test_ring_survives_all_but_one_dead():
    ring = HashRing(4, replication=2, vnodes=16, seed=5)
    live = [False, False, True, False]
    for key in range(200):
        assert ring.preference(key, live) == [2]


def test_ring_describe_topology():
    ring = HashRing(3, replication=2, vnodes=16, seed=7)
    desc = ring.describe()
    assert desc["num_shards"] == 3
    assert desc["points"] == 3 * 16
    assert desc["vnodes_per_shard"] == [16, 16, 16]


def test_ring_validates_arguments():
    with pytest.raises(ValueError):
        HashRing(0)
    with pytest.raises(ValueError):
        HashRing(2, replication=0)
    with pytest.raises(ValueError):
        HashRing(2, vnodes=0)


# --- hot keys -----------------------------------------------------------------


def test_hotkey_detector_promotes_windowed_topk():
    det = HotKeyDetector(window=100, top_k=2, min_count=3)
    for _ in range(5):
        det.observe(11)
    for _ in range(4):
        det.observe(22)
    for _ in range(3):
        det.observe(33)
    det.observe(44)  # below min_count
    assert det.roll() == (11, 22)
    assert det.is_hot(11) and det.is_hot(22)
    assert not det.is_hot(33) and not det.is_hot(44)
    assert det.windows == 1 and det.promotions == 2
    # counts reset: an empty next window demotes everything
    assert det.roll() == ()
    assert det.hot_keys == ()


def test_hotkey_tiebreak_is_deterministic():
    det = HotKeyDetector(window=10, top_k=2, min_count=1)
    for key in (7, 5, 9):  # equal counts -> smallest keys win
        det.observe(key)
    assert det.roll() == (5, 7)


def test_hotkey_eviction_tap_counts_only_hot_keys():
    class Obj:
        def __init__(self, key):
            self.key = key

    det = HotKeyDetector(window=10, top_k=1, min_count=1)
    det.observe(42)
    det.roll()
    det.on_evict(Obj(42))
    det.on_evict(Obj(43))
    assert det.hot_evictions == 1


# --- evict-listener subscriber list (serve satellite) -------------------------


def test_object_store_supports_multiple_evict_listeners():
    config = ServiceConfig.from_params(
        capacity_bytes=1 << 16, num_segments=4, policy="lru", seed=0
    )
    store = config.build_store()
    seen_a, seen_b = [], []
    store.add_evict_listener(lambda obj: seen_a.append(obj.key))
    store.add_evict_listener(lambda obj: seen_b.append(obj.key))
    for req in build_workload("zipf_scan", 800, seed=2):
        if not store.lookup(req):
            store.admit(req)
    assert seen_a and seen_a == seen_b


def test_evict_listener_property_keeps_single_subscriber_semantics():
    config = ServiceConfig.from_params(
        capacity_bytes=1 << 16, num_segments=4, policy="lru", seed=0
    )
    store = config.build_store()
    assert store.evict_listener is None
    first, second = [], []
    store.evict_listener = first.append
    store.add_evict_listener(second.append)
    assert store.evict_listener is not None
    # the property setter replaces the whole subscriber list (the old
    # single-listener clobbering contract)
    store.evict_listener = second.append
    assert isinstance(store, ObjectStore)
    for req in build_workload("zipf_scan", 800, seed=2):
        if not store.lookup(req):
            store.admit(req)
    assert second and not first


# --- federation ---------------------------------------------------------------


def _trained_states(seeds, requests=None):
    """Q-table snapshots from independently trained serve agents."""
    requests = requests or build_workload("zipf_scan", 1500, seed=4)
    out = []
    for seed in seeds:
        config = ServiceConfig.from_params(
            capacity_bytes=1 << 20,
            num_segments=16,
            policy="chrome",
            num_clients=4,
            seed=seed,
            workload_name="zipf_scan",
        )
        policy = config.build_policy()
        run_configured(list(requests), config, policy=policy)
        out.append((policy.agent, policy.agent.qtable.state_dict()))
    return out


def test_merge_is_deterministic_and_order_independent():
    (a, sa), (b, sb), (c, sc) = _trained_states([1, 2, 3])
    assert sa != sb  # different seeds really trained differently
    quantum = a.qtable._quantum
    merged = merge_qtable_states([sa, sb, sc], quantum)
    assert merged == merge_qtable_states([sa, sb, sc], quantum)
    assert merged == merge_qtable_states([sc, sb, sa], quantum)
    assert merged == merge_qtable_states([sb, sc, sa], quantum)
    # every merged value sits on the fixed-point grid
    for feature in merged["tables"]:
        for subtable in feature:
            for row in subtable:
                for v in row:
                    assert v == round(v / quantum) * quantum


def test_merge_of_one_is_identity():
    (a, sa), = _trained_states([5])
    merged = merge_qtable_states([sa], a.qtable._quantum)
    assert merged["tables"] == sa["tables"]


def test_merge_rejects_empty_and_mismatched_geometry():
    (a, sa), = _trained_states([6])
    with pytest.raises(ValueError):
        merge_qtable_states([], a.qtable._quantum)
    bad = dict(sa)
    bad["num_actions"] = sa["num_actions"] + 1
    with pytest.raises(ValueError, match="geometry"):
        merge_qtable_states([sa, bad], a.qtable._quantum)


def test_save_merge_restore_round_trips_bit_identically(tmp_path):
    (a, sa), (b, sb) = _trained_states([7, 8])
    quantum = a.qtable._quantum
    merged = merge_qtable_states([sa, sb], quantum)
    # merged tables survive JSON serialization bit-for-bit (grid values
    # are exactly representable)
    assert json.loads(json.dumps(merged)) == merged
    # load -> save -> restore through the persistence layer
    a.qtable.load_state_dict(merged)
    path = tmp_path / "merged-agent.json"
    a.save(path)
    b.restore(path)
    assert b.qtable.state_dict()["tables"] == merged["tables"]
    # merging already-merged tables is a fixed point
    again = merge_qtable_states(
        [a.qtable.state_dict(), b.qtable.state_dict()], quantum
    )
    assert again["tables"] == merged["tables"]


def test_federate_agents_syncs_tables_and_keeps_local_counters():
    (a, _), (b, _) = _trained_states([9, 10])
    lookups = (a.qtable.lookups, b.qtable.lookups)
    merged = federate_agents([a, b])
    assert a.qtable.state_dict()["tables"] == merged["tables"]
    assert b.qtable.state_dict()["tables"] == merged["tables"]
    assert (a.qtable.lookups, b.qtable.lookups) == lookups
    with pytest.raises(ValueError):
        federate_agents([])


# --- cluster determinism ------------------------------------------------------

_KILL_FAULTS = (
    ("seed", 3),
    ("outage_every_ms", 800.0),
    ("outage_duration_ms", 200.0),
)


def _fleet_job(**overrides):
    spec = dict(
        workload="zipf_scan",
        policy="chrome",
        num_requests=1200,
        warmup_requests=300,
        capacity_bytes=4 << 20,
        num_segments=32,
        num_shards=4,
        replication=2,
        num_clients=8,
        seed=13,
        federate_every=400,
        hotkey_window=256,
        kill_shard=1,
        kill_fault_params=_KILL_FAULTS,
    )
    spec.update(overrides)
    return ClusterJob(**spec)


def test_cluster_metrics_identical_at_any_client_count():
    base = _fleet_job().execute()
    assert _fleet_job(num_clients=1).execute() == base
    assert _fleet_job(num_clients=64).execute() == base


def test_cluster_shard_kill_heals_and_routes_around():
    metrics = _fleet_job().execute()
    assert metrics.ring_changes == 2  # shard died, then came back
    assert metrics.reroutes > 0
    assert metrics.unroutable == 0  # R=2 absorbed the single kill
    # every request (warmup included) landed on exactly one shard
    assert sum(metrics.routed) == 1200 + 300
    assert metrics.federations > 0
    healthy = _fleet_job(kill_shard=-1, kill_fault_params=()).execute()
    assert healthy.ring_changes == 0
    assert healthy.reroutes == 0


def test_cluster_fleet_aggregates_exactly():
    metrics = _fleet_job().execute()
    fleet = metrics.fleet
    assert fleet.requests == sum(m.requests for m in metrics.per_shard)
    assert fleet.hits == sum(m.hits for m in metrics.per_shard)
    assert fleet.bytes_hit == sum(m.bytes_hit for m in metrics.per_shard)
    assert fleet.evictions == sum(m.evictions for m in metrics.per_shard)


def test_cluster_rejects_capacity_below_segments():
    config = ServiceConfig.from_params(
        capacity_bytes=64, num_segments=32, policy="lru", seed=0
    )
    with pytest.raises(ValueError):
        ClusterService(config, num_shards=4)


# --- federation-beats-isolated (seeded smoke) ---------------------------------


def test_federated_fleet_beats_best_isolated_shard():
    """The bench gate's property at test scale: a federated 4-shard
    fleet reaches >= the byte-hit ratio of the best *isolated* shard (a
    single shard-sized cache serving the full stream alone)."""
    seed, reqs, warm, cap = 11, 8000, 1600, 8 << 20
    fed = ClusterJob(
        workload="zipf_scan",
        policy="chrome",
        num_requests=reqs,
        warmup_requests=warm,
        capacity_bytes=cap,
        num_segments=64,
        num_shards=4,
        replication=2,
        num_clients=8,
        seed=seed,
        federate_every=reqs // 8,
        hotkey_window=512,
    ).execute()
    requests = build_workload("zipf_scan", reqs + warm, seed=seed)
    base = ServiceConfig.from_params(
        capacity_bytes=cap // 4,
        num_segments=64,
        policy="chrome",
        num_clients=8,
        warmup_requests=warm,
        seed=seed,
        workload_name="zipf_scan",
    )
    isolated = [
        run_configured(list(requests), base.for_shard(shard)).byte_hit_ratio
        for shard in range(4)
    ]
    assert fed.fleet.byte_hit_ratio >= max(isolated)
