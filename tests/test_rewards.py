"""Unit tests for the reward structure (Table II, Sec. IV-C)."""

from repro.core.rewards import RewardConfig


def test_table_ii_default_values():
    r = RewardConfig()
    assert r.r_ac_demand == 20
    assert r.r_ac_prefetch == 5
    assert r.r_in_demand == -20
    assert r.r_in_prefetch == -5
    assert r.r_ac_nr_obstructed == 28
    assert r.r_ac_nr_normal == 10
    assert r.r_in_nr_obstructed == -22
    assert r.r_in_nr_normal == -10


def test_accurate_prefers_demand_over_prefetch():
    """Objective 2 (Sec. IV-C): retaining demand-bound blocks must earn
    more than retaining prefetch-bound blocks."""
    r = RewardConfig()
    assert r.accurate(is_prefetch=False) > r.accurate(is_prefetch=True) > 0


def test_inaccurate_penalizes_demand_more():
    r = RewardConfig()
    assert r.inaccurate(is_prefetch=False) < r.inaccurate(is_prefetch=True) < 0


def test_nr_rewards_scale_with_obstruction():
    """Objective 4: obstruction amplifies both praise and penalty."""
    r = RewardConfig()
    assert r.accurate_no_rerequest(True) > r.accurate_no_rerequest(False) > 0
    assert r.inaccurate_no_rerequest(True) < r.inaccurate_no_rerequest(False) < 0


def test_nchrome_collapses_obstruction():
    n = RewardConfig().without_concurrency_awareness()
    assert n.accurate_no_rerequest(True) == n.accurate_no_rerequest(False) == 10
    assert n.inaccurate_no_rerequest(True) == n.inaccurate_no_rerequest(False) == -10


def test_nchrome_keeps_rerequest_rewards():
    base = RewardConfig()
    n = base.without_concurrency_awareness()
    assert n.accurate(False) == base.accurate(False)
    assert n.inaccurate(True) == base.inaccurate(True)


def test_config_is_immutable():
    import dataclasses

    import pytest

    r = RewardConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        r.r_ac_demand = 100
