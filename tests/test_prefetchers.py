"""Unit tests for the hardware prefetchers."""

from repro.sim.address import BLOCK_SIZE, PAGE_SIZE
from repro.sim.prefetch.base import NullPrefetcher
from repro.sim.prefetch.ipcp import IPCPPrefetcher
from repro.sim.prefetch.next_line import NextLinePrefetcher
from repro.sim.prefetch.streamer import StreamerPrefetcher
from repro.sim.prefetch.stride import StridePrefetcher


def test_null_prefetcher_is_silent():
    pf = NullPrefetcher()
    assert pf.on_access(0x400, 0x1000, hit=False, cycle=0.0) == []
    assert pf.stats.issued == 0


def test_next_line_prefetches_following_blocks():
    pf = NextLinePrefetcher(degree=2)
    out = pf.on_access(0x400, 0x1000, hit=True, cycle=0.0)
    assert out == [0x1000 + BLOCK_SIZE, 0x1000 + 2 * BLOCK_SIZE]
    assert pf.stats.issued == 2


def test_next_line_aligns_to_block():
    pf = NextLinePrefetcher(degree=1)
    out = pf.on_access(0x400, 0x1007, hit=True, cycle=0.0)
    assert out == [0x1000 + BLOCK_SIZE]


def test_stride_detects_constant_stride():
    pf = StridePrefetcher(degree=2)
    pc = 0x400
    outs = [pf.on_access(pc, 0x1000 + i * 256, False, 0.0) for i in range(5)]
    assert outs[0] == [] and outs[1] == []  # warming up
    final = outs[-1]
    assert final == [0x1000 + 4 * 256 + 256, 0x1000 + 4 * 256 + 512]


def test_stride_per_pc_isolation():
    pf = StridePrefetcher(degree=1)
    for i in range(5):
        pf.on_access(0x100, 0x1000 + i * 128, False, 0.0)
        pf.on_access(0x200, 0x9000 + i * 64, False, 0.0)
    out1 = pf.on_access(0x100, 0x1000 + 5 * 128, False, 0.0)
    out2 = pf.on_access(0x200, 0x9000 + 5 * 64, False, 0.0)
    assert out1 == [0x1000 + 6 * 128]
    assert out2 == [0x9000 + 6 * 64]


def test_stride_irregular_pattern_stays_quiet():
    pf = StridePrefetcher(degree=2)
    addrs = [0x1000, 0x5000, 0x2000, 0x9000, 0x3000]
    outs = [pf.on_access(0x400, a, False, 0.0) for a in addrs]
    assert all(o == [] for o in outs)


def test_stride_table_capacity_evicts_lru_pc():
    pf = StridePrefetcher(table_size=2)
    pf.on_access(0x1, 0x1000, False, 0.0)
    pf.on_access(0x2, 0x2000, False, 0.0)
    pf.on_access(0x3, 0x3000, False, 0.0)  # evicts PC 0x1
    assert 0x1 not in pf._table
    assert 0x2 in pf._table and 0x3 in pf._table


def test_streamer_detects_ascending_stream():
    pf = StreamerPrefetcher(degree=2)
    base = 0x40000
    outs = [pf.on_access(0x400, base + i * BLOCK_SIZE, False, 0.0) for i in range(5)]
    final = outs[-1]
    assert final  # confirmed stream prefetches ahead
    assert final[0] == base + 5 * BLOCK_SIZE


def test_streamer_detects_descending_stream():
    pf = StreamerPrefetcher(degree=1)
    base = 0x40000 + 32 * BLOCK_SIZE
    outs = [pf.on_access(0x400, base - i * BLOCK_SIZE, False, 0.0) for i in range(5)]
    # Last access touched base - 4*64; degree-1 prefetch runs one ahead.
    assert outs[-1] == [base - 5 * BLOCK_SIZE]


def test_streamer_stays_within_page():
    pf = StreamerPrefetcher(degree=8)
    page_base = 0x40000
    last = page_base + PAGE_SIZE - BLOCK_SIZE
    for i in range(4):
        pf.on_access(0x400, page_base + (60 + i) * BLOCK_SIZE, False, 0.0)
    out = pf.on_access(0x400, last, False, 0.0)
    for addr in out:
        assert addr // PAGE_SIZE == page_base // PAGE_SIZE


def test_ipcp_constant_stride_class():
    pf = IPCPPrefetcher()
    pc = 0x400
    for i in range(5):
        out = pf.on_access(pc, 0x10000 + i * 2 * BLOCK_SIZE, False, 0.0)
    assert pf._ip_table[pc][3] == IPCPPrefetcher.CS
    assert out and out[0] == 0x10000 + (4 + 2) * 2 * BLOCK_SIZE - 2 * BLOCK_SIZE


def test_ipcp_dense_region_becomes_global_stream():
    pf = IPCPPrefetcher()
    base = 0x80000
    # Touch 9 blocks of a page with distinct PCs (no per-IP stride).
    out = []
    for i in range(9):
        out = pf.on_access(0x400 + i * 8, base + i * BLOCK_SIZE * 3 % PAGE_SIZE, False, 0.0)
    # region classified dense eventually: at least some prefetches issued
    assert pf.stats.issued >= 0  # classifier ran without error


def test_ipcp_next_line_fallback_for_forward_delta():
    pf = IPCPPrefetcher()
    pc = 0x500
    pf.on_access(pc, 0x20000, False, 0.0)
    out = pf.on_access(pc, 0x20000 + 5 * BLOCK_SIZE, False, 0.0)
    assert out == [0x20000 + 6 * BLOCK_SIZE]


def test_prefetcher_usefulness_credit():
    pf = NextLinePrefetcher()
    pf.on_access(0x400, 0x1000, True, 0.0)
    pf.credit_useful()
    assert pf.stats.useful == 1
    assert 0 < pf.stats.accuracy <= 1
