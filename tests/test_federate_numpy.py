"""Differential gate for the vectorized federation path (satellite of PR 8).

``federate_agents`` takes a tick-array fast path when every agent runs
the numpy backend.  These tests pin that path byte-identical to the
scalar reference merge (:func:`merge_qtable_states`) on genuinely
trained, divergent tables — plus the fallback behaviour for mixed
fleets and the no-aliasing contract (each agent must own its array).
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.cluster.federate import (
    _numpy_tick_arrays,
    federate_agents,
    merge_qtable_states,
)
from repro.core.qtable_np import QTableNumpy
from repro.serve.config import ServiceConfig
from repro.serve.service import run_configured
from repro.serve.workloads import build_workload


def _trained_agents(seeds, backend="numpy"):
    requests = build_workload("zipf_scan", 1500, seed=4)
    agents = []
    for seed in seeds:
        config = ServiceConfig.from_params(
            capacity_bytes=1 << 20,
            num_segments=16,
            policy="chrome",
            num_clients=4,
            seed=seed,
            workload_name="zipf_scan",
            backend=backend,
        )
        policy = config.build_policy()
        run_configured(list(requests), config, policy=policy)
        agents.append(policy.agent)
    return agents


def test_numpy_merge_bit_identical_to_scalar_reference():
    agents = _trained_agents([1, 2, 3])
    assert all(isinstance(a.qtable, QTableNumpy) for a in agents)
    states = [a.qtable.state_dict() for a in agents]
    assert states[0] != states[1]  # the seeds really trained differently
    expected = merge_qtable_states(states, agents[0].qtable._quantum)
    counters = [(a.qtable.lookups, a.qtable.updates) for a in agents]
    merged = federate_agents(agents)
    assert merged == expected
    for agent, before in zip(agents, counters):
        assert agent.qtable.state_dict()["tables"] == expected["tables"]
        assert (agent.qtable.lookups, agent.qtable.updates) == before


def test_numpy_fast_path_engages_and_does_not_alias():
    agents = _trained_agents([5, 6])
    assert _numpy_tick_arrays(agents) is not None
    federate_agents(agents)
    a, b = (agent.qtable for agent in agents)
    assert a._ticks is not b._ticks
    assert np.array_equal(a._ticks, b._ticks)
    # views must target the post-merge array, not a stale one
    for f in range(a.num_features):
        assert a._views[f].base is a._ticks
    # one shard keeps training: the other must not see its updates
    a._ticks[0, 0, 0, 0] += 1
    assert not np.array_equal(a._ticks, b._ticks)


def test_single_agent_numpy_federation_is_identity():
    (agent,) = _trained_agents([7])
    before = agent.qtable.state_dict()
    merged = federate_agents([agent])
    assert merged["tables"] == before["tables"]
    assert agent.qtable.state_dict() == before


def test_mixed_backend_fleet_falls_back_to_generic_merge():
    scalar_agent = _trained_agents([8], backend="scalar")[0]
    numpy_agent = _trained_agents([9], backend="numpy")[0]
    agents = [scalar_agent, numpy_agent]
    assert _numpy_tick_arrays(agents) is None
    states = [a.qtable.state_dict() for a in agents]
    expected = merge_qtable_states(states, scalar_agent.qtable._quantum)
    merged = federate_agents(agents)
    assert merged == expected
    assert scalar_agent.qtable.state_dict()["tables"] == expected["tables"]
    assert numpy_agent.qtable.state_dict()["tables"] == expected["tables"]


def test_merged_values_stay_on_grid_and_reload_cleanly():
    agents = _trained_agents([10, 11, 12])
    merged = federate_agents(agents)
    quantum = agents[0].qtable._quantum
    for feature in merged["tables"]:
        for subtable in feature:
            for row in subtable:
                for v in row:
                    assert v == round(v / quantum) * quantum
    # the merged snapshot must survive the numpy loader's grid checks
    agents[0].qtable.load_state_dict(merged)
