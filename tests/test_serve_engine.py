"""Serve experiments on the parallel engine: scheduling, dedup,
disk caching and bit-identical parallelism for non-simulation jobs."""

import pytest

from repro.cli import main
from repro.experiments import (
    Engine,
    ExperimentScale,
    ResultCache,
    available_experiments,
    execute_job,
    get_plan,
    job_fingerprint,
)
from repro.serve.experiments import (
    FAULT_POLICIES,
    SERVE_PLANS,
    SERVE_POLICIES_COMPARED,
    serve_capacity,
    serve_zipf_plan,
)
from repro.serve.jobs import SERVE_CODE_VERSION, ServeJob
from repro.serve.metrics import ServeMetrics

TINY = ExperimentScale(
    machine_scale=1 / 64,
    accesses_per_core=320,
    warmup_per_core=60,
    workload_limit=2,
    hetero_mixes=2,
)


def _serve_job(**overrides) -> ServeJob:
    spec = dict(
        workload="zipf_scan",
        policy="lru",
        num_requests=300,
        warmup_requests=50,
        capacity_bytes=1 << 20,
        num_segments=32,
        num_clients=3,
        seed=1,
    )
    spec.update(overrides)
    return ServeJob(**spec)


# --- registration -------------------------------------------------------------


def test_serve_experiments_registered_eagerly():
    ids = available_experiments()
    for experiment_id in SERVE_PLANS:
        assert experiment_id in ids
        assert get_plan(experiment_id) is not None


def test_serve_plans_compare_every_policy():
    for experiment_id, plan_builder in SERVE_PLANS.items():
        plan = plan_builder(TINY)
        if experiment_id == "serve_faults":
            # chaos plan: (baseline, learned) x (naive, resilient)
            assert len(plan.jobs) == 2 * len(FAULT_POLICIES)
            assert {job.policy for job in plan.jobs} == set(FAULT_POLICIES)
            assert all(job.fault_params for job in plan.jobs)
            modes = {job.resilience_params for job in plan.jobs}
            assert len(modes) == 2  # naive control vs resilient config
        else:
            assert len(plan.jobs) == len(SERVE_POLICIES_COMPARED)
            assert {job.policy for job in plan.jobs} == set(
                SERVE_POLICIES_COMPARED
            )
            assert not any(job.fault_params for job in plan.jobs)


def test_serve_capacity_scales_with_machine_scale():
    big = serve_capacity(ExperimentScale(machine_scale=1.0))
    small = serve_capacity(ExperimentScale(machine_scale=1 / 64))
    assert big > small
    assert small >= 32 * (96 << 10)  # never below the floor


# --- engine dispatch ----------------------------------------------------------


def test_execute_job_dispatches_serve_jobs():
    metrics = execute_job(_serve_job())
    assert isinstance(metrics, ServeMetrics)
    assert metrics.requests == 300


def test_execute_job_rejects_unknown_job_kinds():
    with pytest.raises(TypeError, match="execute"):
        execute_job(object())


def test_serve_job_execute_is_pure():
    job = _serve_job(policy="chrome")
    first, second = execute_job(job), execute_job(job)
    assert first.hits == second.hits
    assert repr(first.p99_latency_ms) == repr(second.p99_latency_ms)
    assert first.telemetry == second.telemetry


# --- determinism: serial vs parallel -----------------------------------------


def test_serve_zipf_bit_identical_serial_vs_parallel():
    serial = Engine(workers=1).run_plan(serve_zipf_plan(TINY))
    parallel = Engine(workers=2).run_plan(serve_zipf_plan(TINY))
    assert serial == parallel


def test_engine_dedups_identical_serve_jobs():
    engine = Engine(workers=1)
    job = _serve_job()
    results = engine.run_jobs([job, job, job])
    assert len(results) == 1
    assert engine.stats.executed == 1


# --- on-disk cache ------------------------------------------------------------


def test_warm_cache_executes_zero_serve_jobs(tmp_path):
    cold = Engine(workers=1, cache_dir=str(tmp_path))
    cold_result = cold.run_plan(serve_zipf_plan(TINY))
    assert cold.stats.executed == len(SERVE_POLICIES_COMPARED)

    warm = Engine(workers=1, cache_dir=str(tmp_path))
    warm_result = warm.run_plan(serve_zipf_plan(TINY))
    assert warm.stats.executed == 0
    assert warm.stats.disk_hits == cold.stats.executed
    assert warm_result == cold_result


def test_serve_result_cache_roundtrip(tmp_path):
    cache = ResultCache(tmp_path)
    job = _serve_job()
    assert cache.get(job) is None
    metrics = execute_job(job)
    cache.put(job, metrics)
    replay = cache.get(job)
    assert replay is not None
    assert replay.hits == metrics.hits
    assert repr(replay.mean_latency_ms) == repr(metrics.mean_latency_ms)


def test_serve_fingerprint_sensitive_to_every_field():
    base = _serve_job()
    variants = [
        _serve_job(workload="phases"),
        _serve_job(policy="chrome"),
        _serve_job(num_requests=301),
        _serve_job(warmup_requests=51),
        _serve_job(capacity_bytes=(1 << 20) + 1),
        _serve_job(num_segments=64),
        _serve_job(num_clients=4),
        _serve_job(seed=2),
        _serve_job(workload_params=(("alpha", 1.1),)),
        _serve_job(policy_params=(("small_fraction", 0.2),), policy="s3fifo"),
        _serve_job(checkpoint_every=100),
    ]
    fingerprints = {job_fingerprint(j) for j in [base, *variants]}
    assert len(fingerprints) == len(variants) + 1


def test_serve_fingerprint_namespaced_from_sim_jobs():
    assert _serve_job().canonical()[0] == "serve"
    assert _serve_job().canonical()[1] == SERVE_CODE_VERSION


# --- CLI ----------------------------------------------------------------------


def test_cli_run_serve_zipf_parallel_smoke(capsys):
    code = main(
        [
            "run",
            "serve_zipf",
            "--jobs",
            "2",
            "--quiet",
            "--scale",
            str(1 / 64),
            "--accesses",
            "300",
            "--warmup",
            "50",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "byte_hit%" in out
    assert "chrome" in out and "lru" in out
    assert "CHROME byte hit ratio" in out  # the vs-LRU note


def test_cli_serve_cache_dir_warm_rerun(tmp_path, capsys):
    argv = [
        "run",
        "serve_phases",
        "--jobs",
        "1",
        "--cache-dir",
        str(tmp_path),
        "--scale",
        str(1 / 64),
        "--accesses",
        "250",
        "--warmup",
        "40",
    ]
    assert main(argv) == 0
    first = capsys.readouterr()
    assert main(argv) == 0
    second = capsys.readouterr()
    split = "[serve_phases took"
    assert second.out.split(split)[0] == first.out.split(split)[0]
    assert "0 simulated" in second.err
