"""Structure tests for the experiment harness at tiny scale.

These run real (but minuscule) simulations, asserting each experiment
produces a well-formed table with the right rows/columns — the values
themselves are checked at benchmark scale (see EXPERIMENTS.md).
"""

import pytest

from repro.experiments.figures import (
    EXPERIMENTS,
    fig2,
    fig3,
    fig12,
    fig15,
    run_experiment,
    spec_homogeneous_suite,
    tab3,
    tab4,
    tab7,
)
from repro.experiments.runner import ExperimentScale, Runner

TINY = ExperimentScale(
    machine_scale=1 / 64,
    accesses_per_core=350,
    warmup_per_core=80,
    workload_limit=2,
    hetero_mixes=2,
)


@pytest.fixture(scope="module")
def runner():
    return Runner(TINY)


def test_registry_covers_every_paper_artifact():
    expected = {f"fig{i}" for i in (1, 2, 3, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16)}
    expected |= {"tab3", "tab4", "tab7"}
    assert expected <= set(EXPERIMENTS)


def test_run_experiment_unknown_id():
    with pytest.raises(KeyError):
        run_experiment("fig99")


def test_suite_cache_reuses_runs(runner):
    first = spec_homogeneous_suite(runner, num_cores=2, schemes=("chrome",))
    second = spec_homogeneous_suite(runner, num_cores=2, schemes=("chrome",))
    assert first is second  # cached on the runner


def test_fig2_structure(runner):
    result = fig2(runner)
    assert result.columns[0] == "workload"
    assert result.rows[-1][0] == "mean"
    for row in result.rows:
        # unused% splits into requested-again + never-again
        assert row[1] == pytest.approx(row[2] + row[3], abs=0.1)


def test_fig3_covers_both_prefetch_configs(runner):
    result = fig3(runner)
    assert {"nl_stride", "stride_streamer"} == set(result.column("prefetch"))


def test_fig12_compares_chrome_variants(runner):
    result = fig12(runner)
    assert result.columns == ["cores", "chrome", "n-chrome"]
    assert [r[0] for r in result.rows] == ["4c", "8c", "16c"]


def test_fig15_has_three_variants(runner):
    result = fig15(runner)
    assert set(result.column("features")) == {"pc_only", "pn_only", "pc+pn"}


def test_tab7_upksa_monotone_nonincreasing(runner):
    result = tab7(runner)
    upksa = result.column("upksa")
    assert all(b <= a + 50 for a, b in zip(upksa, upksa[1:]))  # small-scale slack
    overheads = result.column("eq_overhead_kb")
    assert overheads == sorted(overheads)


def test_tab3_is_analytic_and_exact(runner):
    result = tab3(runner)
    assert result.row_by_key("q-table")[1] == 32.0
    assert result.row_by_key("eq")[1] == 12.7
    assert result.row_by_key("metadata(epv)")[1] == 48.0
    assert result.row_by_key("total")[1] == 92.7


def test_tab4_chrome_unique_capabilities(runner):
    result = tab4(runner)
    rows = {r[0]: r for r in result.rows}
    both = [name for name, r in rows.items() if r[1] == "yes" and r[2] == "yes"]
    assert both == ["chrome"]
