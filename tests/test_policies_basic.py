"""Unit tests for LRU, Random, SRRIP/BRRIP/DRRIP, SHiP++ and the registry."""

import pytest

from repro.sim.access import DEMAND, PREFETCH, WRITEBACK, AccessInfo
from repro.sim.cache import Cache
from repro.sim.replacement import PAPER_SCHEMES, POLICY_REGISTRY, make_policy
from repro.sim.replacement.lru import LRUPolicy
from repro.sim.replacement.random_policy import RandomPolicy
from repro.sim.replacement.ship import SHiPPolicy
from repro.sim.replacement.srrip import (
    BRRIPPolicy,
    DRRIPPolicy,
    RRPV_MAX,
    SRRIPPolicy,
)


def _info(block, pc=0x400, type_=DEMAND, sets=4):
    info = AccessInfo(
        pc=pc, address=block << 6, block_addr=block, core=0, type=type_
    )
    info.set_index = block % sets
    return info


def _cache(policy, ways=2, sets=4):
    return Cache(
        name="t", size_bytes=64 * ways * sets, ways=ways, latency=1.0, policy=policy
    )


def test_registry_builds_every_policy():
    for name in POLICY_REGISTRY:
        policy = make_policy(name)
        assert policy.name == name


def test_registry_unknown_name_raises():
    with pytest.raises(KeyError):
        make_policy("opt")


def test_paper_schemes_in_registry():
    for name in PAPER_SCHEMES:
        assert name in POLICY_REGISTRY


def test_fresh_instances_from_factory():
    a, b = make_policy("chrome"), make_policy("chrome")
    assert a is not b


def test_lru_evicts_least_recent():
    cache = _cache(LRUPolicy(), ways=2, sets=1)
    cache.fill(_info(0, sets=1))
    cache.fill(_info(1, sets=1))
    cache.access(_info(0, sets=1))
    cache.fill(_info(2, sets=1))
    assert cache.probe(0) and not cache.probe(1)


def test_random_policy_deterministic_with_seed():
    a, b = RandomPolicy(seed=3), RandomPolicy(seed=3)
    for p in (a, b):
        p.attach(1, 8)
    blocks = [object()] * 8
    picks_a = [a.find_victim(_info(0), blocks) for _ in range(10)]
    picks_b = [b.find_victim(_info(0), blocks) for _ in range(10)]
    assert picks_a == picks_b
    assert all(0 <= w < 8 for w in picks_a)


def test_srrip_promotes_on_hit():
    policy = SRRIPPolicy()
    cache = _cache(policy, ways=2, sets=1)
    cache.fill(_info(0, sets=1))
    cache.fill(_info(1, sets=1))
    cache.access(_info(0, sets=1))
    assert policy._rrpv[0][cache._tag_maps[0][0]] == 0


def test_srrip_victim_prefers_saturated_rrpv():
    policy = SRRIPPolicy()
    policy.attach(1, 4)
    policy._rrpv[0] = [2, RRPV_MAX, 1, 0]
    info = _info(0, sets=1)
    info.set_index = 0
    assert policy.find_victim(info, [None] * 4) == 1


def test_srrip_ages_when_no_candidate():
    policy = SRRIPPolicy()
    policy.attach(1, 2)
    policy._rrpv[0] = [0, 1]
    info = _info(0, sets=1)
    info.set_index = 0
    victim = policy.find_victim(info, [None, None])
    assert victim == 1  # aged to RRPV_MAX first
    assert policy._rrpv[0][0] == 2


def test_brrip_mostly_inserts_distant():
    policy = BRRIPPolicy(long_probability=0.0)
    cache = _cache(policy, ways=2, sets=1)
    cache.fill(_info(0, sets=1))
    way = cache._tag_maps[0][0]
    assert policy._rrpv[0][way] == RRPV_MAX


def test_drrip_dueling_sets_disjoint():
    policy = DRRIPPolicy()
    policy.attach(1024, 8)
    assert not (policy._srrip_sets & policy._brrip_sets)
    assert policy._srrip_sets and policy._brrip_sets


def test_drrip_psel_moves_on_dueling_misses():
    policy = DRRIPPolicy()
    policy.attach(64, 2)
    srrip_set = next(iter(policy._srrip_sets))
    start = policy._psel
    info = _info(0)
    info.set_index = srrip_set
    policy.on_fill(info, [None, None], 0)
    assert policy._psel == start + 1


def test_ship_trains_on_first_reuse_only():
    policy = SHiPPolicy(sampled_sets=4)
    cache = _cache(policy, ways=2, sets=4)
    info = _info(0)
    cache.fill(info)
    sig = policy._sig[0][cache._tag_maps[0][0]]
    cache.access(_info(0))
    counter_after_first = policy._shct[sig]
    cache.access(_info(0))
    assert policy._shct[sig] == counter_after_first


def test_ship_detrains_on_dead_eviction():
    policy = SHiPPolicy(sampled_sets=1)
    cache = _cache(policy, ways=1, sets=1)
    cache.fill(_info(0, sets=1))
    sig = policy._sig[0][0]
    cache.fill(_info(1, sets=1))  # evict 0, never reused
    assert policy._shct[sig] == 0


def test_ship_prefetch_signature_differs():
    policy = SHiPPolicy()
    policy.attach(4, 2)
    d = policy._signature(_info(0, type_=DEMAND))
    p = policy._signature(_info(0, type_=PREFETCH))
    assert d != p


def test_ship_writeback_inserted_distant():
    policy = SHiPPolicy()
    cache = _cache(policy, ways=2, sets=4)
    info = _info(0, type_=WRITEBACK)
    cache.fill(info, dirty=True)
    way = cache._tag_maps[0][0]
    assert policy._rrpv[0][way] == RRPV_MAX


def test_storage_overheads_reported():
    for name in ("lru", "srrip", "ship++", "hawkeye", "glider", "mockingjay", "care", "chrome"):
        policy = make_policy(name)
        policy.attach(1024, 12)
        assert policy.storage_overhead_bits() > 0
