"""Unit tests for CHROME's program-feature extraction (Table I)."""

import pytest

from repro.core.features import (
    DEFAULT_FEATURES,
    FEATURE_REGISTRY,
    FeatureContext,
    FeatureExtractor,
    PC_SIG_BITS,
    pc_signature,
)


def test_default_features_are_pc_and_page():
    assert DEFAULT_FEATURES == ("pc_sig", "page")


def test_registry_covers_table_i():
    # control-flow, data-access, and combination features all present
    for name in (
        "pc_sig",
        "pc_seq",
        "address",
        "delta",
        "delta_seq",
        "page",
        "page_offset",
        "pc_delta",
        "pc_page",
        "pc_offset",
    ):
        assert name in FEATURE_REGISTRY


def test_unknown_feature_rejected():
    with pytest.raises(KeyError):
        FeatureExtractor(feature_names=("pc_sig", "nope"))


def test_state_width_matches_feature_count():
    fx = FeatureExtractor()
    state = fx.extract(pc=0x400, address=0x1234, core=0, hit=False, is_prefetch=False)
    assert len(state) == 2
    assert fx.num_features == 2


def test_pc_signature_separates_hit_miss():
    ctx_hit = FeatureContext(pc=0x400, address=0, core=0, hit=True, is_prefetch=False)
    ctx_miss = FeatureContext(pc=0x400, address=0, core=0, hit=False, is_prefetch=False)
    assert pc_signature(ctx_hit) != pc_signature(ctx_miss)


def test_pc_signature_separates_demand_prefetch():
    ctx_d = FeatureContext(pc=0x400, address=0, core=0, hit=False, is_prefetch=False)
    ctx_p = FeatureContext(pc=0x400, address=0, core=0, hit=False, is_prefetch=True)
    assert pc_signature(ctx_d) != pc_signature(ctx_p)


def test_pc_signature_separates_cores():
    ctx0 = FeatureContext(pc=0x400, address=0, core=0, hit=False, is_prefetch=False)
    ctx1 = FeatureContext(pc=0x400, address=0, core=1, hit=False, is_prefetch=False)
    assert pc_signature(ctx0) != pc_signature(ctx1)


def test_pc_signature_bit_width():
    for pc in (0, 0x400, 0xFFFFFFFF):
        ctx = FeatureContext(pc=pc, address=0, core=3, hit=True, is_prefetch=True)
        assert 0 <= pc_signature(ctx) < (1 << PC_SIG_BITS)


def test_page_feature_same_page_same_value():
    fx = FeatureExtractor()
    s1 = fx.extract(pc=1, address=0x5000, core=0, hit=False, is_prefetch=False)
    s2 = fx.extract(pc=2, address=0x5FC0, core=0, hit=False, is_prefetch=False)
    assert s1[1] == s2[1]  # same 4KB page
    s3 = fx.extract(pc=2, address=0x6000, core=0, hit=False, is_prefetch=False)
    assert s3[1] != s2[1]


def test_fast_path_matches_generic_path():
    """The memoized default-feature fast path must agree with the
    registry functions it shortcuts."""
    fast = FeatureExtractor(feature_names=("pc_sig", "page"))
    cases = [
        (0x400, 0x12345, 0, False, False),
        (0x404, 0xABCDE, 1, True, False),
        (0x404, 0xABCDE, 1, True, True),
    ]
    for pc, addr, core, hit, pf in cases:
        state = fast.extract(pc, addr, core, hit, pf)
        ctx = FeatureContext(pc=pc, address=addr, core=core, hit=hit, is_prefetch=pf)
        assert state[0] == FEATURE_REGISTRY["pc_sig"](ctx)
        assert state[1] == FEATURE_REGISTRY["page"](ctx)


def test_memoization_is_consistent():
    fx = FeatureExtractor()
    a = fx.extract(0x400, 0x1000, 0, False, False)
    b = fx.extract(0x400, 0x1000, 0, False, False)
    assert a == b


def test_history_features_track_deltas():
    fx = FeatureExtractor(feature_names=("delta",))
    fx.extract(0x1, 0x1000, 0, False, False)
    s2 = fx.extract(0x2, 0x1040, 0, False, False)
    fx.extract(0x3, 0x2000, 0, False, False)
    s4 = fx.extract(0x4, 0x2040, 0, False, False)
    # Same most-recent delta (0x40) should give the same feature value.
    assert s2 == s4


def test_history_is_per_core():
    fx = FeatureExtractor(feature_names=("pc_seq",))
    fx.extract(0x1, 0, 0, False, False)
    fx.extract(0x2, 0, 0, False, False)
    s_core0 = fx.extract(0x3, 0, 0, False, False)
    fx.extract(0x1, 0, 1, False, False)
    fx.extract(0x2, 0, 1, False, False)
    s_core1 = fx.extract(0x3, 0, 1, False, False)
    assert s_core0 == s_core1  # identical history per core


def test_single_feature_state():
    fx = FeatureExtractor(feature_names=("pc_sig",))
    state = fx.extract(0x400, 0x1000, 0, False, False)
    assert len(state) == 1
